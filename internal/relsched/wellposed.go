package relsched

import (
	"errors"
	"fmt"

	"repro/internal/cg"
)

// ErrUnfeasible reports that the constraint graph has a positive cycle
// even with all unbounded delays at their minimum value 0, so no schedule
// exists under any circumstances (Theorem 1).
var ErrUnfeasible = errors.New("relsched: unfeasible timing constraints (positive cycle)")

// ErrInconsistent reports that the iterative incremental scheduler
// exhausted its |E_b|+1 iteration budget without satisfying every maximum
// constraint, which proves the constraints inconsistent (Corollary 2).
var ErrInconsistent = errors.New("relsched: inconsistent timing constraints")

// IllPosedError reports a maximum timing constraint whose satisfiability
// depends on an unbounded delay: the anchor set of the backward edge's
// tail is not contained in the anchor set of its head (Lemma 1/Theorem 2).
type IllPosedError struct {
	// Edge is the index of the offending backward edge.
	Edge int
	// Tail and Head are the edge's endpoints (the constraint bounds
	// Tail's start time from Head's).
	Tail, Head cg.VertexID
	// Missing lists anchors in A(Tail) that are absent from A(Head).
	Missing []cg.VertexID
}

// Error implements the error interface.
func (e *IllPosedError) Error() string {
	return fmt.Sprintf("relsched: ill-posed maximum constraint on edge %d (%d -> %d): anchors %v not in head's anchor set",
		e.Edge, e.Tail, e.Head, e.Missing)
}

// ErrCannotWellPose reports that MakeWellPosed failed because serializing
// would close a cycle through an unbounded-weight edge; by Lemma 3 no
// well-posed serial-compatible graph exists.
var ErrCannotWellPose = errors.New("relsched: graph cannot be made well-posed (unbounded-length cycle)")

// CheckFeasible reports whether the constraint graph admits a schedule
// when all unbounded delays are 0 (Definition 6/Theorem 1), returning
// ErrUnfeasible otherwise.
func CheckFeasible(g *cg.Graph) error {
	if err := g.Freeze(); err != nil {
		return err
	}
	if g.HasPositiveCycle() {
		return ErrUnfeasible
	}
	return nil
}

// CheckWellPosed verifies that every timing constraint can be satisfied
// for all values of the unbounded delays (Definition 7). It returns nil
// for well-posed graphs, ErrUnfeasible for graphs with positive cycles,
// and an *IllPosedError identifying the first offending backward edge
// otherwise. This is the paper's checkWellposed: containment of anchor
// sets across every backward edge (Theorem 2).
func CheckWellPosed(g *cg.Graph) error {
	_, err := CheckWellPosedAnalyzed(g)
	return err
}

// CheckWellPosedAnalyzed is CheckWellPosed, but on success it returns
// the anchor-set computation the check is built on (full anchor sets
// only — no relevant/irredundant refinement, no longest-path tables).
// Pass it to AnalyzeFromSets to finish the full analysis without
// re-running the anchor-set pass, which is the dominant cost of both
// the check and the analysis on the paper's design sizes. The returned
// AnchorInfo is freshly allocated and owned by the caller.
func CheckWellPosedAnalyzed(g *cg.Graph) (*AnchorInfo, error) {
	if err := CheckFeasible(g); err != nil {
		return nil, err
	}
	ai := anchorSets(g)
	if err := checkContainment(g, ai); err != nil {
		return nil, err
	}
	return ai, nil
}

func checkContainment(g *cg.Graph, ai *AnchorInfo) error {
	for _, ei := range g.BackwardEdges() {
		e := g.Edge(ei)
		if ai.Full[e.From].SubsetOf(ai.Full[e.To]) {
			continue
		}
		ill := &IllPosedError{Edge: ei, Tail: e.From, Head: e.To}
		ai.Full[e.From].ForEach(func(i int) {
			if !ai.Full[e.To].Has(i) {
				ill.Missing = append(ill.Missing, ai.List[i])
			}
		})
		return ill
	}
	return nil
}

// MakeWellPosed returns a minimally serialized well-posed version of g, or
// an error when none exists. The input graph is never mutated; the result
// is a serial-compatible graph — g plus zero or more Serialization edges
// from anchors to the heads of backward edges (and, transitively, along
// backward-edge chains), each carrying an unbounded weight δ(anchor).
//
// Every added edge forms a zero-length maximal defining path, so by
// Theorem 7 the result is a minimum serial-compatible graph: no well-posed
// serialization of g has shorter longest paths.
//
// The returned count is the number of serialization edges added; it is 0
// when g is already well-posed, in which case the returned graph is a
// plain clone.
func MakeWellPosed(g *cg.Graph) (*cg.Graph, int, error) {
	return MakeWellPosedTraced(g, nil)
}

// MakeWellPosedTraced is MakeWellPosed with an optional trace hook: each
// sweep of the fixpoint loop reports the number of serialization edges it
// added through Hooks.SerializationPass (the converging sweep reports 0).
// A nil hook is valid and equivalent to MakeWellPosed.
func MakeWellPosedTraced(g *cg.Graph, h *Hooks) (*cg.Graph, int, error) {
	if err := CheckFeasible(g); err != nil {
		return nil, 0, err
	}
	work := g.Clone()
	added := 0
	// The paper's makeWellposed adds edges per ill-posed backward edge,
	// propagating along backward-edge chains via addEdge. Adding an edge
	// enlarges anchor sets downstream, which can expose further
	// violations on already-visited backward edges, so we iterate the
	// pass to a fixpoint; each pass adds at least one edge and at most
	// |A|·|V| edges can ever be added, guaranteeing termination.
	for {
		ai := anchorSets(work)
		n, err := makeWellPosedPass(work, ai)
		added += n
		h.serializationPass(n)
		if err != nil {
			return nil, added, err
		}
		if n == 0 {
			if err := work.Freeze(); err != nil {
				return nil, added, fmt.Errorf("relsched: serialization corrupted graph: %w", err)
			}
			return work, added, nil
		}
	}
}

// makeWellPosedPass runs one sweep of the paper's makeWellposed over all
// backward edges, adding serialization edges to g in place and keeping the
// anchor sets in ai consistent with the additions. It returns the number
// of edges added.
func makeWellPosedPass(g *cg.Graph, ai *AnchorInfo) (int, error) {
	added := 0
	var addEdge func(aIdx int, v cg.VertexID) error
	addEdge = func(aIdx int, v cg.VertexID) error {
		if ai.Full[v].Has(aIdx) {
			return nil
		}
		a := ai.List[aIdx]
		if a == v {
			return ErrCannotWellPose
		}
		// Adding the unbounded edge (a, v) closes an unbounded-length
		// cycle exactly when v already reaches a.
		if g.IsForwardPredecessor(v, a) {
			return ErrCannotWellPose
		}
		g.AddSerialization(a, v)
		added++
		ai.Full[v].Add(aIdx)
		// Propagate along backward edges leaving v so chained maximum
		// constraints stay well-posed.
		for _, ei := range g.OutEdges(v) {
			e := g.Edge(ei)
			if e.Kind.Forward() {
				continue
			}
			if err := addEdge(aIdx, e.To); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ei := range g.BackwardEdges() {
		e := g.Edge(ei)
		missing := []int{}
		ai.Full[e.From].ForEach(func(i int) {
			if !ai.Full[e.To].Has(i) {
				missing = append(missing, i)
			}
		})
		for _, aIdx := range missing {
			if err := addEdge(aIdx, e.To); err != nil {
				return added, err
			}
		}
	}
	return added, nil
}
