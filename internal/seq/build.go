package seq

import (
	"fmt"

	"repro/internal/hcl"
)

// FromProcess builds the hierarchical sequencing graph of a HardwareC
// process. Within each graph, operations are maximally parallel: the only
// sequencing edges are data dependencies (def→use, use→def, def→def on the
// same variable) and program order between operations touching the same
// port, mirroring the Hercules behavioral optimization described in §VII.
// Each timing constraint attaches to the (unique) graph that directly
// contains both tagged operations.
func FromProcess(p *hcl.Process) (*Graph, error) {
	return FromProcessOpts(p, BuildOptions{})
}

// BuildOptions configures sequencing-graph construction.
type BuildOptions struct {
	// Decompose lowers compound expressions into three-address form: one
	// ALU operation per operator, chained through fresh temporaries.
	// This is the fine operation granularity Hercules works at; without
	// it each assignment is a single ALU vertex classified by its
	// topmost operator. Loop and branch conditions are never decomposed
	// (the control evaluates them).
	Decompose bool
}

// FromProcessOpts is FromProcess with construction options.
func FromProcessOpts(p *hcl.Process, opts BuildOptions) (*Graph, error) {
	ports := map[string]bool{}
	for _, pd := range p.Ports {
		ports[pd.Name] = true
	}
	procs := map[string]*hcl.Procedure{}
	for _, pr := range p.Procedures {
		procs[pr.Name] = pr
	}
	temps := 0
	g, err := buildGraphFull(p.Name, p.Body.Stmts, ports, opts, &temps, procs)
	if err != nil {
		return nil, err
	}
	// Resolve constraints to the graphs holding their tags.
	for _, c := range p.Constraints {
		var holder *Graph
		g.Walk(func(sub *Graph) {
			if sub.OpByTag(c.From) != nil && sub.OpByTag(c.To) != nil {
				holder = sub
			}
		})
		if holder == nil {
			return nil, fmt.Errorf("seq: constraint from %q to %q: tags not in a common graph", c.From, c.To)
		}
		holder.Constraints = append(holder.Constraints, c)
	}
	return g, nil
}

// effects summarizes what a statement subtree consumes and produces.
type effects struct {
	uses  []string
	defs  []string
	ports []string
}

func (e *effects) add(other effects) {
	e.uses = union(e.uses, other.uses)
	e.defs = union(e.defs, other.defs)
	e.ports = union(e.ports, other.ports)
}

func union(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// analyze computes the effects of a statement subtree; procs resolves
// procedure calls to their bodies.
func analyze(s hcl.Stmt, procs map[string]*hcl.Procedure) effects {
	switch st := s.(type) {
	case *hcl.Block:
		var e effects
		for _, sub := range st.Stmts {
			e.add(analyze(sub, procs))
		}
		return e
	case *hcl.Assign:
		return effects{uses: hcl.Idents(st.RHS), defs: []string{st.LHS}}
	case *hcl.Read:
		return effects{defs: []string{st.LHS}, ports: []string{st.Port}}
	case *hcl.Write:
		return effects{uses: hcl.Idents(st.RHS), ports: []string{st.Port}}
	case *hcl.While:
		e := analyze(st.Body, procs)
		e.uses = union(e.uses, hcl.Idents(st.Cond))
		return e
	case *hcl.RepeatUntil:
		e := analyze(st.Body, procs)
		e.uses = union(e.uses, hcl.Idents(st.Cond))
		return e
	case *hcl.If:
		e := effects{uses: hcl.Idents(st.Cond)}
		e.add(analyze(st.Then, procs))
		if st.Else != nil {
			e.add(analyze(st.Else, procs))
		}
		return e
	case *hcl.Call:
		if pr := procs[st.Name]; pr != nil {
			return analyze(pr.Body, procs)
		}
	}
	return effects{}
}

// builder tracks data-flow state while lowering one statement list into
// one sequencing graph.
type builder struct {
	g        *Graph
	ports    map[string]bool  // declared port names of the process
	lastDef  map[string]int   // variable -> op that last defined it
	lastUses map[string][]int // variable -> uses since its last def
	lastPort map[string]int   // port -> last op touching it
	barrier  int              // last synchronization barrier op, or -1
	sub      int              // child-graph counter for naming
	opts     BuildOptions
	temps    *int // shared fresh-temporary counter across the hierarchy
	procs    map[string]*hcl.Procedure
}

func buildGraphFull(name string, stmts []hcl.Stmt, ports map[string]bool, opts BuildOptions, temps *int, procs map[string]*hcl.Procedure) (*Graph, error) {
	b := &builder{
		g:        &Graph{Name: name},
		ports:    ports,
		lastDef:  map[string]int{},
		lastUses: map[string][]int{},
		lastPort: map[string]int{},
		barrier:  -1,
		opts:     opts,
		temps:    temps,
		procs:    procs,
	}
	b.g.addOp(&Op{Kind: OpNop, Name: "source"})
	for _, s := range stmts {
		if err := b.stmt(s); err != nil {
			return nil, err
		}
	}
	b.finish()
	return b.g, nil
}

// freshTemp returns a new temporary variable name.
func (b *builder) freshTemp() string {
	*b.temps++
	return fmt.Sprintf("_t%d", *b.temps)
}

// lowerExpr decomposes a compound expression into three-address ALU ops,
// returning the residual expression (a leaf or a single operator applied
// to leaves) for the final consuming operation. Leaves pass through
// unchanged.
func (b *builder) lowerExpr(e hcl.Expr) hcl.Expr {
	switch x := e.(type) {
	case *hcl.Unary:
		inner := b.lowerOperand(x.X)
		return &hcl.Unary{Op: x.Op, X: inner}
	case *hcl.Binary:
		return &hcl.Binary{Op: x.Op, X: b.lowerOperand(x.X), Y: b.lowerOperand(x.Y)}
	default:
		return e
	}
}

// lowerOperand reduces a subexpression to a leaf, emitting an ALU op into
// a fresh temporary when the subexpression is compound.
func (b *builder) lowerOperand(e hcl.Expr) hcl.Expr {
	switch e.(type) {
	case *hcl.Ident, *hcl.Num:
		return e
	}
	tmp := b.freshTemp()
	lowered := b.lowerExpr(e)
	b.place(&Op{Kind: OpALU, Name: "alu_" + tmp, Target: tmp, Expr: lowered},
		effects{uses: hcl.Idents(lowered), defs: []string{tmp}})
	return &hcl.Ident{Name: tmp}
}

// portify moves expression references to declared ports into the port set
// of the effects: an expression naming an input port samples it, so the
// op participates in per-port ordering.
func (b *builder) portify(e effects) effects {
	for _, u := range e.uses {
		if b.ports[u] {
			e.ports = union(e.ports, []string{u})
		}
	}
	return e
}

// finish appends the sink and wires every op without successors to it.
func (b *builder) finish() {
	sink := b.g.addOp(&Op{Kind: OpNop, Name: "sink"})
	hasOut := make([]bool, len(b.g.Ops))
	hasIn := make([]bool, len(b.g.Ops))
	for _, e := range b.g.Edges {
		hasOut[e[0]] = true
		hasIn[e[1]] = true
	}
	for _, o := range b.g.Ops {
		if o.ID == sink.ID {
			continue
		}
		if o.ID != b.g.Source() && !hasIn[o.ID] {
			b.g.addEdge(b.g.Source(), o.ID)
		}
		if !hasOut[o.ID] {
			b.g.addEdge(o.ID, sink.ID)
		}
	}
}

// place adds an op with the given effects, wiring data and port
// dependencies against the current state and then updating it.
func (b *builder) place(o *Op, e effects) {
	e = b.portify(e)
	op := b.g.addOp(o)
	op.Uses = e.uses
	op.Defs = e.defs
	b.wire(op, e)
	b.update(op, e)
	// A hierarchical op (loop, procedure call, conditional) that
	// synchronizes on or performs I/O is a barrier: later port operations
	// must not be hoisted across it, even on ports it never touches (the
	// gcd reads sample only after the while(restart) wait completes, and
	// a called wait_rise procedure guards the read that follows it).
	if op.Hierarchical() && len(e.ports) > 0 {
		b.barrier = op.ID
	}
}

// wire adds the dependency edges of an op with effects e against the
// current data-flow state.
func (b *builder) wire(op *Op, e effects) {
	depended := false
	for _, u := range e.uses {
		if d, ok := b.lastDef[u]; ok {
			b.g.addEdge(d, op.ID)
			depended = true
		}
	}
	for _, d := range e.defs {
		if prev, ok := b.lastDef[d]; ok {
			b.g.addEdge(prev, op.ID)
			depended = true
		}
		for _, u := range b.lastUses[d] {
			b.g.addEdge(u, op.ID)
			depended = true
		}
	}
	for _, p := range e.ports {
		if prev, ok := b.lastPort[p]; ok {
			b.g.addEdge(prev, op.ID)
			depended = true
		}
	}
	if len(e.ports) > 0 && b.barrier >= 0 && b.barrier != op.ID {
		b.g.addEdge(b.barrier, op.ID)
		depended = true
	}
	if !depended {
		b.g.addEdge(b.g.Source(), op.ID)
	}
}

// update records the op's effects into the data-flow state.
func (b *builder) update(op *Op, e effects) {
	for _, u := range e.uses {
		b.lastUses[u] = append(b.lastUses[u], op.ID)
	}
	for _, d := range e.defs {
		b.lastDef[d] = op.ID
		b.lastUses[d] = nil
	}
	for _, p := range e.ports {
		b.lastPort[p] = op.ID
	}
}

func (b *builder) stmt(s hcl.Stmt) error {
	switch st := s.(type) {
	case *hcl.Empty:
		return nil
	case *hcl.Block:
		if st.Parallel {
			return b.parallelBlock(st)
		}
		for _, sub := range st.Stmts {
			if err := b.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *hcl.Assign:
		rhs := st.RHS
		if b.opts.Decompose {
			rhs = b.lowerExpr(rhs)
		}
		b.place(&Op{Kind: OpALU, Name: "alu_" + st.LHS, Tag: st.Tag, Target: st.LHS, Expr: rhs},
			effects{uses: hcl.Idents(rhs), defs: []string{st.LHS}})
		return nil
	case *hcl.Read:
		b.place(&Op{Kind: OpRead, Name: "read_" + st.Port, Tag: st.Tag, Target: st.LHS, Port: st.Port},
			analyze(st, b.procs))
		return nil
	case *hcl.Write:
		rhs := st.RHS
		if b.opts.Decompose {
			rhs = b.lowerExpr(rhs)
		}
		b.place(&Op{Kind: OpWrite, Name: "write_" + st.Port, Tag: st.Tag, Port: st.Port, Expr: rhs},
			effects{uses: hcl.Idents(rhs), ports: []string{st.Port}})
		return nil
	case *hcl.While:
		body, err := b.child("loop", bodyStmts(st.Body))
		if err != nil {
			return err
		}
		e := analyze(st, b.procs)
		// A pre-test while reads its condition from ports too when the
		// condition names an input port; ports touched inside the body
		// already appear in e.ports via analyze.
		b.place(&Op{Kind: OpLoop, Name: "while", Tag: st.Tag, Expr: st.Cond, Body: body, LoopStyle: WhileLoop}, e)
		return nil
	case *hcl.RepeatUntil:
		body, err := b.child("loop", bodyStmts(st.Body))
		if err != nil {
			return err
		}
		b.place(&Op{Kind: OpLoop, Name: "repeat", Tag: st.Tag, Expr: st.Cond, Body: body, LoopStyle: RepeatUntilLoop},
			analyze(st, b.procs))
		return nil
	case *hcl.Call:
		pr := b.procs[st.Name]
		if pr == nil {
			return fmt.Errorf("seq: call to unknown procedure %q", st.Name)
		}
		body, err := b.child("call_"+st.Name, pr.Body.Stmts)
		if err != nil {
			return err
		}
		b.place(&Op{Kind: OpCall, Name: "call_" + st.Name, Tag: st.Tag, Body: body},
			analyze(st, b.procs))
		return nil
	case *hcl.If:
		then, err := b.child("then", bodyStmts(st.Then))
		if err != nil {
			return err
		}
		var els *Graph
		if st.Else != nil {
			els, err = b.child("else", bodyStmts(st.Else))
			if err != nil {
				return err
			}
		}
		b.place(&Op{Kind: OpCond, Name: "if", Tag: st.Tag, Expr: st.Cond, Then: then, Else: els},
			analyze(st, b.procs))
		return nil
	}
	return fmt.Errorf("seq: unsupported statement %T", s)
}

// parallelBlock lowers a < … > block: every statement's dependencies are
// computed against the state before the block, so the statements are
// mutually concurrent (the gcd swap `< y = x; x = y; >` reads both old
// values). Effects are merged afterwards.
func (b *builder) parallelBlock(blk *hcl.Block) error {
	type placed struct {
		op *Op
		e  effects
	}
	var ops []placed
	defs := map[string]bool{}
	// First pass: create and wire ops against the pre-block state.
	for _, s := range blk.Stmts {
		var op *Op
		switch st := s.(type) {
		case *hcl.Empty:
			continue
		case *hcl.Assign:
			op = &Op{Kind: OpALU, Name: "alu_" + st.LHS, Tag: st.Tag, Target: st.LHS, Expr: st.RHS}
		case *hcl.Read:
			op = &Op{Kind: OpRead, Name: "read_" + st.Port, Tag: st.Tag, Target: st.LHS, Port: st.Port}
		case *hcl.Write:
			op = &Op{Kind: OpWrite, Name: "write_" + st.Port, Tag: st.Tag, Port: st.Port, Expr: st.RHS}
		default:
			return fmt.Errorf("seq: only simple statements allowed in parallel blocks, got %T", s)
		}
		e := b.portify(analyze(s, b.procs))
		for _, d := range e.defs {
			if defs[d] {
				return fmt.Errorf("seq: parallel block defines %q twice", d)
			}
			defs[d] = true
		}
		o := b.g.addOp(op)
		o.Uses = e.uses
		o.Defs = e.defs
		b.wire(o, e)
		ops = append(ops, placed{o, e})
	}
	// Second pass: commit all effects.
	for _, pl := range ops {
		b.update(pl.op, pl.e)
	}
	return nil
}

// child builds a child graph from a statement body.
func (b *builder) child(kind string, stmts []hcl.Stmt) (*Graph, error) {
	b.sub++
	return buildGraphFull(fmt.Sprintf("%s.%s%d", b.g.Name, kind, b.sub), stmts, b.ports, b.opts, b.temps, b.procs)
}

// bodyStmts flattens a statement into the list a child graph is built
// from: blocks contribute their statements, anything else is a singleton,
// and empty statements vanish.
func bodyStmts(s hcl.Stmt) []hcl.Stmt {
	switch st := s.(type) {
	case *hcl.Empty:
		return nil
	case *hcl.Block:
		if !st.Parallel {
			return st.Stmts
		}
	}
	return []hcl.Stmt{s}
}
