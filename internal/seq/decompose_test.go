package seq

import (
	"testing"

	"repro/internal/cg"
	"repro/internal/hcl"
)

func buildOpts(t *testing.T, src string, opts BuildOptions) *Graph {
	t.Helper()
	p, err := hcl.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, err := FromProcessOpts(p, opts)
	if err != nil {
		t.Fatalf("FromProcessOpts: %v", err)
	}
	return g
}

const compound = `
process p (o)
    out port o[16];
    boolean a[16], b[16], c[16], r[16];
    r = a + (b >> 1) + (c >> 2);
    write o = r & 255;
`

func TestDecomposeThreeAddress(t *testing.T) {
	flat := buildOpts(t, compound, BuildOptions{})
	dec := buildOpts(t, compound, BuildOptions{Decompose: true})

	countALU := func(g *Graph) int {
		n := 0
		for _, o := range g.Ops {
			if o.Kind == OpALU {
				n++
			}
		}
		return n
	}
	if got := countALU(flat); got != 1 {
		t.Errorf("flat ALU ops = %d, want 1", got)
	}
	// a + (b>>1) + (c>>2): the two shifts and the inner add become
	// temporaries, the root add defines r (4 ALU ops); the write's
	// single `& 255` stays inside the write op.
	if got := countALU(dec); got != 4 {
		t.Errorf("decomposed ALU ops = %d, want 4", got)
	}
	// Every decomposed op's expression is a single operator over leaves.
	for _, o := range dec.Ops {
		if o.Kind != OpALU && o.Kind != OpWrite {
			continue
		}
		if depth(o.Expr) > 1 {
			t.Errorf("op %s still compound: depth %d", o.Name, depth(o.Expr))
		}
	}
}

func depth(e hcl.Expr) int {
	switch x := e.(type) {
	case *hcl.Binary:
		d := depth(x.X)
		if dy := depth(x.Y); dy > d {
			d = dy
		}
		return d + 1
	case *hcl.Unary:
		return depth(x.X) + 1
	default:
		return 0
	}
}

func TestDecomposePreservesDataFlow(t *testing.T) {
	// The temporaries must chain: each consumer depends on its producer.
	g := buildOpts(t, compound, BuildOptions{Decompose: true})
	cgr, _, err := g.ToConstraintGraph(func(o *Op) cg.Delay {
		if o.Kind == OpNop {
			return cg.Cycles(0)
		}
		return cg.Cycles(1)
	}, nil)
	if err != nil {
		t.Fatalf("ToConstraintGraph: %v", err)
	}
	// With unit delays and a 5-deep chain (shift → add → add → mask →
	// write), the critical path must reflect the chaining.
	if l := cgr.CriticalForwardLength(); l < 4 {
		t.Errorf("critical length = %d, want ≥ 4 (chained temporaries)", l)
	}
}

func TestDecomposeUniqueTemps(t *testing.T) {
	// Temporaries must be unique across the hierarchy: two graphs
	// decomposing expressions must not share temp names.
	src := `
process p (i, o)
    in port i;
    out port o[16];
    boolean a[16], b[16], r[16];
    while (i) {
        r = (a + 1) * (b + 2);
    }
    r = (a + 3) * (b + 4);
    write o = r;
`
	g := buildOpts(t, src, BuildOptions{Decompose: true})
	names := map[string]string{}
	g.Walk(func(sub *Graph) {
		for _, o := range sub.Ops {
			if o.Kind != OpALU || o.Target == "" || o.Target[0] != '_' {
				continue
			}
			if prev, dup := names[o.Target]; dup {
				t.Errorf("temp %s defined in both %s and %s", o.Target, prev, sub.Name)
			}
			names[o.Target] = sub.Name
		}
	})
	if len(names) == 0 {
		t.Error("no temporaries generated")
	}
}

func TestDecomposeLeavesConditionsAlone(t *testing.T) {
	src := `
process p (i, o)
    in port i;
    out port o[8];
    boolean a[8], r[8];
    while ((a + 1) < (a * 2)) {
        a = a + 1;
    }
    write o = r;
`
	g := buildOpts(t, src, BuildOptions{Decompose: true})
	for _, o := range g.Ops {
		if o.Kind == OpLoop && depth(o.Expr) < 2 {
			t.Error("loop condition should not be decomposed")
		}
	}
}
