package seq

import (
	"fmt"
	"strings"
)

// String renders the graph and its hierarchy as an indented listing: one
// line per op with its kind, dependencies, and tags, then child graphs.
func (g *Graph) String() string {
	var b strings.Builder
	g.format(&b, 0)
	return b.String()
}

func (g *Graph) format(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%sgraph %s (%d ops, %d edges", pad, g.Name, len(g.Ops), len(g.Edges))
	if len(g.Constraints) > 0 {
		fmt.Fprintf(b, ", %d constraints", len(g.Constraints))
	}
	fmt.Fprintf(b, ")\n")
	preds := make(map[int][]int)
	for _, e := range g.Edges {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	for _, o := range g.Ops {
		fmt.Fprintf(b, "%s  %2d %-6s %-16s", pad, o.ID, o.Kind, o.Name)
		if o.Tag != "" {
			fmt.Fprintf(b, " tag=%s", o.Tag)
		}
		if len(preds[o.ID]) > 0 {
			fmt.Fprintf(b, " <- %v", preds[o.ID])
		}
		fmt.Fprintln(b)
	}
	for _, c := range g.Children() {
		c.format(b, depth+1)
	}
}
