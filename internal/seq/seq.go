// Package seq implements the hierarchical polar sequencing graph model of
// the Hercules/Hebe synthesis system (§II of the paper): vertices are
// operations, edges are sequencing dependencies derived from data flow,
// and loops/conditionals are hierarchical vertices whose bodies are
// sequencing graphs of their own. Package seq also builds sequencing
// graphs from parsed HardwareC processes, extracting maximal parallelism
// from data dependencies the way Hercules does.
package seq

import (
	"fmt"

	"repro/internal/cg"
	"repro/internal/hcl"
)

// OpKind classifies sequencing-graph operations.
type OpKind int

// Operation kinds.
const (
	// OpNop is a no-operation vertex: the source and sink of each graph.
	OpNop OpKind = iota
	// OpRead samples an input port into a variable.
	OpRead
	// OpWrite drives an output port from an expression.
	OpWrite
	// OpALU evaluates an expression into a variable.
	OpALU
	// OpLoop executes its Body graph repeatedly — a while (pre-test) or
	// repeat…until (post-test) loop. Loops have unbounded delay.
	OpLoop
	// OpCond evaluates a condition and executes Then or Else.
	OpCond
	// OpCall executes its Body graph once — a procedure call, the third
	// hierarchy construct of §II.
	OpCall
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpNop:
		return "nop"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpALU:
		return "alu"
	case OpLoop:
		return "loop"
	case OpCond:
		return "cond"
	case OpCall:
		return "call"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// LoopKind distinguishes pre-test from post-test loops.
type LoopKind int

// Loop kinds.
const (
	WhileLoop LoopKind = iota
	RepeatUntilLoop
)

// Op is one operation vertex of a sequencing graph.
type Op struct {
	ID   int
	Kind OpKind
	Name string
	Tag  string // HardwareC tag, if the statement carried one

	// Port names the port for OpRead/OpWrite.
	Port string
	// Target is the variable defined by OpRead/OpALU.
	Target string
	// Expr is the evaluated expression (OpALU, OpWrite) or condition
	// (OpLoop, OpCond).
	Expr hcl.Expr

	// Body is the loop body for OpLoop, or the callee graph for OpCall.
	Body *Graph
	// LoopStyle selects pre- vs post-test for OpLoop.
	LoopStyle LoopKind
	// Then and Else are the branch bodies for OpCond (Else may be nil).
	Then, Else *Graph

	// Uses and Defs are the variable sets consumed and produced, used by
	// the data-flow construction and by the simulator.
	Uses []string
	Defs []string
}

// OpKey returns a hierarchy-unique identifier for an op of this graph,
// used to key data-dependent condition decisions (graph names are unique
// across the hierarchy and op IDs within a graph).
func (g *Graph) OpKey(o *Op) string {
	return fmt.Sprintf("%s/%d", g.Name, o.ID)
}

// Hierarchical reports whether the op owns child graphs.
func (o *Op) Hierarchical() bool {
	return o.Kind == OpLoop || o.Kind == OpCond || o.Kind == OpCall
}

// Graph is one sequencing graph: a polar DAG of operations. Ops[0] is the
// source and Ops[len-1] the sink after Finish.
type Graph struct {
	Name string
	Ops  []*Op
	// Edges are sequencing dependencies (from, to) by op ID.
	Edges [][2]int
	// Constraints are the timing constraints whose tagged endpoints both
	// live directly in this graph.
	Constraints []hcl.Constraint
}

// Source returns the source op ID (always 0).
func (g *Graph) Source() int { return 0 }

// Sink returns the sink op ID (always the last op).
func (g *Graph) Sink() int { return len(g.Ops) - 1 }

// OpByTag returns the op carrying the given tag, or nil.
func (g *Graph) OpByTag(tag string) *Op {
	for _, o := range g.Ops {
		if o.Tag == tag {
			return o
		}
	}
	return nil
}

// Children returns the child graphs of hierarchical ops, in op order.
func (g *Graph) Children() []*Graph {
	var out []*Graph
	for _, o := range g.Ops {
		if o.Body != nil {
			out = append(out, o.Body)
		}
		if o.Then != nil {
			out = append(out, o.Then)
		}
		if o.Else != nil {
			out = append(out, o.Else)
		}
	}
	return out
}

// Walk visits g and every descendant graph, parents before children.
func (g *Graph) Walk(fn func(*Graph)) {
	fn(g)
	for _, c := range g.Children() {
		c.Walk(fn)
	}
}

// CountOps returns the total number of operation vertices in the graph
// and all descendants, including per-graph source and sink vertices —
// the |V| accounting used by the paper's Table III ("the values in the
// table are based on results for the entire graph").
func (g *Graph) CountOps() int {
	n := 0
	g.Walk(func(sub *Graph) { n += len(sub.Ops) })
	return n
}

// addOp appends an op and returns it.
func (g *Graph) addOp(o *Op) *Op {
	o.ID = len(g.Ops)
	g.Ops = append(g.Ops, o)
	return o
}

// addEdge records a sequencing dependency, dropping duplicates and
// self-edges.
func (g *Graph) addEdge(from, to int) {
	if from == to {
		return
	}
	for _, e := range g.Edges {
		if e[0] == from && e[1] == to {
			return
		}
	}
	g.Edges = append(g.Edges, [2]int{from, to})
}

// DelayFn assigns an execution delay to an operation. The synthesis
// driver supplies one that consults the module library and the latencies
// of already-scheduled child graphs.
type DelayFn func(*Op) cg.Delay

// ToConstraintGraph lowers one (flat) sequencing graph to the polar
// weighted constraint graph of §III: one vertex per op with the delay
// assigned by delayOf, sequencing edges as forward edges, and the graph's
// timing constraints as forward/backward constraint edges. extraSerial
// lists additional serializing dependencies (from conflict resolution over
// shared modules), given as op-ID pairs.
//
// It returns the constraint graph and the op→vertex mapping.
func (g *Graph) ToConstraintGraph(delayOf DelayFn, extraSerial [][2]int) (*cg.Graph, []cg.VertexID, error) {
	cgr := cg.New()
	vid := make([]cg.VertexID, len(g.Ops))
	for _, o := range g.Ops {
		if o.ID == g.Source() {
			vid[o.ID] = cgr.Source()
			continue
		}
		name := o.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", o.Kind, o.ID)
		}
		vid[o.ID] = cgr.AddOp(name, delayOf(o))
	}
	for _, e := range g.Edges {
		cgr.AddSeq(vid[e[0]], vid[e[1]])
	}
	for _, e := range extraSerial {
		cgr.AddSeq(vid[e[0]], vid[e[1]])
	}
	for _, c := range g.Constraints {
		from := g.OpByTag(c.From)
		to := g.OpByTag(c.To)
		if from == nil || to == nil {
			return nil, nil, fmt.Errorf("seq: graph %s: constraint tags %q/%q not in this graph", g.Name, c.From, c.To)
		}
		if c.Min {
			cgr.AddMin(vid[from.ID], vid[to.ID], c.Cycles)
		} else {
			cgr.AddMax(vid[from.ID], vid[to.ID], c.Cycles)
		}
	}
	if err := cgr.Freeze(); err != nil {
		return nil, nil, fmt.Errorf("seq: graph %s: %w", g.Name, err)
	}
	return cgr, vid, nil
}
