package seq

import (
	"strings"
	"testing"

	"repro/internal/cg"
	"repro/internal/hcl"
)

const gcdSource = `
process gcd (xin, yin, restart, result)
    in port xin[8], yin[8], restart;
    out port result[8];
    boolean x[8], y[8];
    tag a, b;
    while (restart)
        ;
    {
        constraint mintime from a to b = 1 cycles;
        constraint maxtime from a to b = 1 cycles;
        a: y = read(yin);
        b: x = read(xin);
    }
    if ((x != 0) & (y != 0))
    {
        repeat {
            while (x >= y)
                x = x - y;
            < y = x; x = y; >
        } until (y == 0);
    }
    write result = x;
`

func mustBuild(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := hcl.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g, err := FromProcess(p)
	if err != nil {
		t.Fatalf("FromProcess: %v", err)
	}
	return g
}

func hasEdge(g *Graph, from, to int) bool {
	for _, e := range g.Edges {
		if e[0] == from && e[1] == to {
			return true
		}
	}
	return false
}

func TestGCDTopology(t *testing.T) {
	g := mustBuild(t, gcdSource)

	// Top level: source, while(restart), read_y, read_x, if, write, sink.
	var wait, readY, readX, iff, write *Op
	for _, o := range g.Ops {
		switch {
		case o.Kind == OpLoop && o.LoopStyle == WhileLoop:
			wait = o
		case o.Kind == OpRead && o.Port == "yin":
			readY = o
		case o.Kind == OpRead && o.Port == "xin":
			readX = o
		case o.Kind == OpCond:
			iff = o
		case o.Kind == OpWrite:
			write = o
		}
	}
	if wait == nil || readY == nil || readX == nil || iff == nil || write == nil {
		t.Fatalf("missing top-level ops: %+v", g.Ops)
	}
	if readY.Tag != "a" || readX.Tag != "b" {
		t.Errorf("tags: readY=%q readX=%q", readY.Tag, readX.Tag)
	}

	// The reads must both wait on the synchronization barrier but be
	// mutually unordered (the timing constraints order them).
	if !hasEdge(g, wait.ID, readY.ID) || !hasEdge(g, wait.ID, readX.ID) {
		t.Error("reads must depend on the while(restart) barrier")
	}
	if hasEdge(g, readY.ID, readX.ID) || hasEdge(g, readX.ID, readY.ID) {
		t.Error("reads of different ports must be parallel")
	}
	// Data flow into the conditional.
	if !hasEdge(g, readY.ID, iff.ID) || !hasEdge(g, readX.ID, iff.ID) {
		t.Error("conditional must consume both reads")
	}
	if !hasEdge(g, iff.ID, write.ID) {
		t.Error("write must follow the conditional (defines x)")
	}

	// Both timing constraints attach to the top graph.
	if len(g.Constraints) != 2 {
		t.Errorf("top-level constraints = %d, want 2", len(g.Constraints))
	}

	// Hierarchy: if → then-graph → repeat → loop-graph → while → body.
	then := iff.Then
	if then == nil {
		t.Fatal("if has no then graph")
	}
	var rep *Op
	for _, o := range then.Ops {
		if o.Kind == OpLoop && o.LoopStyle == RepeatUntilLoop {
			rep = o
		}
	}
	if rep == nil {
		t.Fatal("then graph missing repeat loop")
	}
	var inner *Op
	var swapOps int
	for _, o := range rep.Body.Ops {
		if o.Kind == OpLoop && o.LoopStyle == WhileLoop {
			inner = o
		}
		if o.Kind == OpALU {
			swapOps++
		}
	}
	if inner == nil {
		t.Fatal("repeat body missing inner while")
	}
	if swapOps != 2 {
		t.Errorf("repeat body swap ALU ops = %d, want 2", swapOps)
	}
	// The swap ops must be mutually unordered (parallel block).
	var swaps []*Op
	for _, o := range rep.Body.Ops {
		if o.Kind == OpALU {
			swaps = append(swaps, o)
		}
	}
	if hasEdge(rep.Body, swaps[0].ID, swaps[1].ID) || hasEdge(rep.Body, swaps[1].ID, swaps[0].ID) {
		t.Error("parallel swap must be unordered")
	}
	// But both must follow the inner while (which defines x).
	if !hasEdge(rep.Body, inner.ID, swaps[0].ID) || !hasEdge(rep.Body, inner.ID, swaps[1].ID) {
		t.Error("swap must follow the inner while loop")
	}

	// Total op count across hierarchy.
	if got := g.CountOps(); got < 15 {
		t.Errorf("CountOps = %d, suspiciously small", got)
	}
}

func TestToConstraintGraph(t *testing.T) {
	g := mustBuild(t, gcdSource)
	delays := func(o *Op) cg.Delay {
		switch o.Kind {
		case OpNop:
			return cg.Cycles(0)
		case OpLoop, OpCond:
			return cg.UnboundedDelay()
		default:
			return cg.Cycles(1)
		}
	}
	cgr, vid, err := g.ToConstraintGraph(delays, nil)
	if err != nil {
		t.Fatalf("ToConstraintGraph: %v", err)
	}
	if cgr.N() != len(g.Ops) {
		t.Errorf("vertex count %d != op count %d", cgr.N(), len(g.Ops))
	}
	// The min and max constraints appear as one forward and one backward
	// edge between the tagged reads.
	a := g.OpByTag("a")
	b := g.OpByTag("b")
	var sawMin, sawMax bool
	for _, e := range cgr.Edges() {
		if e.Kind == cg.MinConstraint && e.From == vid[a.ID] && e.To == vid[b.ID] && e.Weight == 1 {
			sawMin = true
		}
		if e.Kind == cg.MaxConstraint && e.From == vid[b.ID] && e.To == vid[a.ID] && e.Weight == -1 {
			sawMax = true
		}
	}
	if !sawMin || !sawMax {
		t.Errorf("constraint edges missing: min=%v max=%v", sawMin, sawMax)
	}
}

func TestSequentialDataDependencies(t *testing.T) {
	g := mustBuild(t, `
process p (o)
    out port o[8];
    boolean u[8], v[8], w[8];
    u = 1;
    v = u + 2;
    u = 3;
    w = v * u;
    write o = w;
`)
	// u=1 → v=u+2 (def-use); v=u+2 → u=3 (anti); u=3 → w (def-use);
	// v → w (def-use).
	ops := map[string]int{}
	for _, o := range g.Ops {
		if o.Kind == OpALU {
			ops[o.Name+"@"+itoa(o.ID)] = o.ID
		}
	}
	// Identify by order: first alu_u, alu_v, second alu_u, alu_w.
	var ids []int
	for _, o := range g.Ops {
		if o.Kind == OpALU {
			ids = append(ids, o.ID)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("ALU ops = %d, want 4", len(ids))
	}
	u1, v1, u2, w1 := ids[0], ids[1], ids[2], ids[3]
	for _, e := range [][2]int{{u1, v1}, {v1, u2}, {u2, w1}, {v1, w1}} {
		if !hasEdge(g, e[0], e[1]) {
			t.Errorf("missing dependency %v", e)
		}
	}
	if hasEdge(g, u1, u2) {
		// Output dependency u1→u2 is also legal; accept either but the
		// anti-dependency must exist (checked above).
		t.Log("output dependency present (fine)")
	}
}

func itoa(i int) string { return string(rune('0' + i%10)) }

func TestWalkAndChildren(t *testing.T) {
	g := mustBuild(t, gcdSource)
	count := 0
	g.Walk(func(*Graph) { count++ })
	// top, then-graph, repeat-body, inner-while-body, wait-body (empty).
	if count != 5 {
		t.Errorf("hierarchy graphs = %d, want 5", count)
	}
}

func TestGraphString(t *testing.T) {
	g := mustBuild(t, gcdSource)
	out := g.String()
	for _, want := range []string{"graph gcd", "read_yin", "tag=a", "loop", "graph gcd.then"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestOpKeyUnique(t *testing.T) {
	g := mustBuild(t, gcdSource)
	seen := map[string]bool{}
	g.Walk(func(sub *Graph) {
		for _, o := range sub.Ops {
			k := sub.OpKey(o)
			if seen[k] {
				t.Errorf("duplicate op key %s", k)
			}
			seen[k] = true
		}
	})
}
