package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cgio"
	"repro/internal/logx"
	"repro/internal/relsched"
)

// This file is the HTTP face of the Server: routing, request decoding
// (single JSON object or JSONL batch), and response rendering. Every
// endpoint, status code, and body shape here is documented — with curl
// transcripts — in docs/SERVICE.md; keep the two in sync.

// maxRequestBody bounds POST bodies (a .cg source is text; 8 MiB is
// thousands of times the largest paper design).
const maxRequestBody = 8 << 20

// TenantHeader names the header admission keys tenants by.
const TenantHeader = "X-Tenant"

// Handler returns the server's full mux: the job API under /v1/ and the
// shared observability surface (/metrics, /healthz, /readyz,
// /debug/trace) via MountDebug, with /readyz bound to Server.Ready so
// it flips 503 the moment drain starts. The whole mux is wrapped in the
// request-scoped middleware (middleware.go): every request gets a
// traceparent + X-Request-ID and lands in
// serve.http.requests{route,method,code}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobGet)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/slo", s.handleSLO)
	mux.HandleFunc("/v1/admin/config", s.handleAdminConfig)
	mux.HandleFunc("/v1/admin/profile", s.handleAdminProfile)
	mux.HandleFunc("/v1/events", s.handleEvents)
	MountDebug(mux, s.eng.Metrics(), s.tracer, s.Ready)
	return s.withRequestScope(mux)
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
	// Reason is machine-readable on 429s: queue_full, rate, quota.
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		// Retry-After is integer seconds; round up so "wait 300ms" does
		// not become "retry immediately".
		secs := int64((e.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.status, errorBody{Error: e.msg, Reason: e.reason})
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleJobs is POST /v1/jobs: one JobRequest (application/json) or a
// JSONL batch (application/x-ndjson, application/jsonl, or any body
// whose first line parses as one object per line). Admission is atomic
// per request. Responses:
//
//	202 {"jobs":[JobView...]}  every job accepted (status "queued")
//	400                        malformed JSON or unparseable .cg source
//	409                        a submitted ID already exists
//	413                        body over maxRequestBody
//	429 + Retry-After          shed: queue full, rate limit, or quota
//	503                        draining
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST /v1/jobs")
		return
	}
	reqs, err := decodeJobRequests(r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", maxRequestBody)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "no jobs in request")
		return
	}
	jobs := make([]parsedJob, len(reqs))
	for i, req := range reqs {
		if strings.TrimSpace(req.Source) == "" {
			writeError(w, http.StatusBadRequest, "job %d: missing \"source\"", i)
			return
		}
		g, err := cgio.ParseString(req.Source)
		if err != nil {
			writeError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = parsedJob{
			id:       req.ID,
			design:   req.Design,
			graph:    g,
			wellPose: req.WellPose,
			timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		}
	}

	records, apiErr := s.submit(r.Header.Get(TenantHeader), jobs, requestMeta(r))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	views := make([]JobView, len(records))
	for i, rec := range records {
		views[i] = s.view(rec, relsched.IrredundantAnchors, false)
	}
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

// decodeJobRequests parses the POST body: a single JSON object, a JSON
// array of objects, or JSONL (one object per line, blank and '#' lines
// skipped — the same conventions as `relsched batch -manifest`). JSONL
// is selected by Content-Type (application/x-ndjson or
// application/jsonl); everything else is decoded by shape.
func decodeJobRequests(r *http.Request) ([]JobRequest, error) {
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "application/x-ndjson", "application/jsonl", "application/x-jsonlines":
		return decodeJSONL(data)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var reqs []JobRequest
		if err := json.Unmarshal(data, &reqs); err != nil {
			return nil, fmt.Errorf("invalid JSON: %w", err)
		}
		return reqs, nil
	}
	var req JobRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	return []JobRequest{req}, nil
}

// decodeJSONL parses one JobRequest per line.
func decodeJSONL(data []byte) ([]JobRequest, error) {
	var reqs []JobRequest
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), maxRequestBody)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var req JobRequest
		if err := json.Unmarshal([]byte(text), &req); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reqs, nil
}

// handleJobGet is GET and PATCH /v1/jobs/{id}. GET returns the job's
// current JobView — 200 with status queued/running/done/failed, or 404
// for an ID the server never accepted or has evicted. PATCH applies
// graph edits through the incremental delta path (see handleJobPatch).
// ?mode=full|relevant|irredundant picks the offset table's anchor sets
// (default irredundant) for both methods.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPatch {
		w.Header().Set("Allow", "GET, PATCH")
		writeError(w, http.StatusMethodNotAllowed, "use GET or PATCH /v1/jobs/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeError(w, http.StatusNotFound, "want /v1/jobs/{id}")
		return
	}
	mode := relsched.IrredundantAnchors
	switch m := r.URL.Query().Get("mode"); m {
	case "", "irredundant":
	case "full":
		mode = relsched.FullAnchors
	case "relevant":
		mode = relsched.RelevantAnchors
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want full, relevant, or irredundant)", m)
		return
	}
	if r.Method == http.MethodPatch {
		s.handleJobPatch(w, r, id, mode)
		return
	}
	rec, ok := s.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q (never accepted, or its result was evicted)", id)
		return
	}
	writeJSON(w, http.StatusOK, s.view(rec, mode, true))
}

// handleStatus is GET /v1/status: the StatusView snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET /v1/status")
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}

// handleSLO is GET /v1/slo: the SLO tracker's objectives, window sums,
// burn rates, and last burn firing (with its flight bundle and profile
// capture paths). With tracking disabled it answers {"enabled": false}.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET /v1/slo")
		return
	}
	writeJSON(w, http.StatusOK, s.slo.view(s.now()))
}

// handleAdminProfile is POST /v1/admin/profile: trigger an on-demand
// CPU+heap profile capture (the same rate-limited path SLO burns and
// flight dumps use). Responses:
//
//	202 prof.Capture      capture started; the heap file exists, the CPU
//	                      file appears when its recording window closes
//	404                   the daemon was started without a profile dir
//	429                   rate-limited, capped, or already capturing
func (s *Server) handleAdminProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST /v1/admin/profile")
		return
	}
	if !s.prof.CaptureEnabled() {
		writeError(w, http.StatusNotFound, "profile capture is not enabled (start with -prof-dir)")
		return
	}
	pc, ok := s.prof.Capture("manual")
	if !ok {
		writeError(w, http.StatusTooManyRequests, "capture refused: rate-limited, capped, or already in flight")
		return
	}
	writeJSON(w, http.StatusAccepted, pc)
}

// ConfigRequest is the POST /v1/admin/config body. Every field is
// optional; present fields are applied, the response is the resulting
// StatusView. Workers resizes the serving pool (>= 1; shrinks finish
// their current job first). CacheCapacity rebounds the engine's memo
// LRU (evicting down if needed; <= 0 restores the engine default).
// Rate/Burst/TenantQuota hot-swap the tenant admission policy.
type ConfigRequest struct {
	Workers       *int     `json:"workers,omitempty"`
	CacheCapacity *int     `json:"cache_capacity,omitempty"`
	RatePerTenant *float64 `json:"rate_per_tenant,omitempty"`
	Burst         *int     `json:"burst,omitempty"`
	TenantQuota   *int     `json:"tenant_quota,omitempty"`
}

// handleAdminConfig is POST /v1/admin/config (hot reload) and GET (the
// current effective config, as a StatusView). Reload is refused with
// 503 once drain has started — the pool is winding down.
func (s *Server) handleAdminConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Status())
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST /v1/admin/config")
		return
	}
	var req ConfigRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	if req.Workers != nil && *req.Workers < 1 {
		writeError(w, http.StatusBadRequest, "workers must be >= 1")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; config is frozen")
		return
	}
	if req.CacheCapacity != nil {
		s.eng.SetCacheCapacity(*req.CacheCapacity)
	}
	if req.RatePerTenant != nil || req.Burst != nil || req.TenantQuota != nil {
		rate, burst, quota := s.limiter.policy()
		if req.RatePerTenant != nil {
			rate = *req.RatePerTenant
		}
		if req.Burst != nil {
			burst = *req.Burst
		}
		if req.TenantQuota != nil {
			quota = *req.TenantQuota
		}
		s.limiter.setPolicy(rate, burst, quota)
	}
	if req.Workers != nil {
		s.resizePool(*req.Workers)
	}
	if s.log.Enabled(logx.LevelInfo) {
		s.log.Info("config reloaded", logx.Int("workers", int64(s.Workers())))
	}
	writeJSON(w, http.StatusOK, s.Status())
}
