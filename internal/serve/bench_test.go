package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cg"
	"repro/internal/designs"
	"repro/internal/engine"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// This file is the E18 harness (EXPERIMENTS.md): sustained-load
// throughput and latency of the serve daemon over real HTTP, replaying
// the eight paper designs' constraint graphs plus seeded randgraph
// traffic through closed-loop clients. Run with
//
//	go test -run '^$' -bench BenchmarkServeSustained -benchtime 5x ./internal/serve
//
// Reported custom metrics: jobs/s (client-observed completion
// throughput), p50/p99-ms (the serve.job.latency histogram — admission
// to terminal state, queue wait included).

// renderCG serializes a graph to the .cg text format with synthetic
// vertex names (n<id>, source as the implicit v0), so design graphs with
// repeated operation names survive the name-addressed format.
func renderCG(g *cg.Graph) string {
	name := func(id cg.VertexID) string {
		if id == g.Source() {
			return "v0"
		}
		return fmt.Sprintf("n%d", id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph g%d\n", g.N())
	for _, v := range g.Vertices() {
		if v.ID == g.Source() {
			continue
		}
		if v.Delay.Bounded() {
			fmt.Fprintf(&b, "vertex %s delay=%d\n", name(v.ID), v.Delay.Value())
		} else {
			fmt.Fprintf(&b, "vertex %s unbounded\n", name(v.ID))
		}
	}
	for _, e := range g.Edges() {
		switch e.Kind {
		case cg.Sequencing, cg.Serialization:
			fmt.Fprintf(&b, "seq %s %s\n", name(e.From), name(e.To))
		case cg.MinConstraint:
			fmt.Fprintf(&b, "min %s %s %d\n", name(e.From), name(e.To), e.Weight)
		case cg.MaxConstraint:
			// AddMax(from,to,u) stores the edge reversed with weight -u.
			fmt.Fprintf(&b, "max %s %s %d\n", name(e.To), name(e.From), -e.Weight)
		}
	}
	return b.String()
}

// trafficCorpus is the E18 replay mix: every constraint graph in the
// eight paper designs' hierarchies, plus seeded random graphs at three
// sizes to model the long tail of user-submitted work.
func trafficCorpus(tb testing.TB) []string {
	tb.Helper()
	var sources []string
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			tb.Fatal(err)
		}
		for _, g := range r.Order {
			sources = append(sources, renderCG(r.Graphs[g].CG))
		}
	}
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{40, 120, 400} {
		cfg := randgraph.Default()
		cfg.N = n
		// The generator aims for feasible graphs but tight max
		// constraints can still produce a positive cycle; keep only
		// schedulable traffic.
		for kept, tries := 0, 0; kept < 15 && tries < 200; tries++ {
			g := randgraph.Generate(cfg, rng)
			if _, err := relsched.Compute(g); err != nil {
				continue
			}
			kept++
			sources = append(sources, renderCG(g))
		}
	}
	return sources
}

// postBatch submits sources as one JSON array and returns the
// server-assigned job IDs from the 202 body.
func postBatch(tb testing.TB, client *http.Client, url string, sources []string) []string {
	tb.Helper()
	reqs := make([]map[string]any, len(sources))
	for i, src := range sources {
		reqs[i] = map[string]any{"source": src}
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		tb.Fatalf("POST /v1/jobs = %d, want 202", resp.StatusCode)
	}
	var out struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	ids := make([]string, len(out.Jobs))
	for i, v := range out.Jobs {
		ids[i] = v.ID
	}
	return ids
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal, failing
// the benchmark on a failed job.
func pollDone(tb testing.TB, client *http.Client, url, id string) {
	tb.Helper()
	for {
		resp, err := client.Get(url + "/v1/jobs/" + id + "?mode=irredundant")
		if err != nil {
			tb.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		switch v.Status {
		case StatusDone:
			return
		case StatusFailed:
			tb.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkServeSustained drives the corpus through the full HTTP stack
// with closed-loop concurrent clients: each client POSTs a batch, polls
// every job in it to completion, then posts the next. The warm variant
// keeps the engine memo cache (the steady-state daemon); cold disables
// it (every job pays the full pipeline).
func BenchmarkServeSustained(b *testing.B) {
	corpus := trafficCorpus(b)
	const (
		clients   = 4
		batchSize = 8
	)
	for _, mode := range []struct {
		name    string
		nocache bool
	}{{"warm", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: 1, DisableCache: mode.nocache})
			s, err := New(Options{Engine: eng, QueueDepth: 2 * len(corpus)})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			client := ts.Client()

			// Batches are fixed slices of the corpus so every iteration
			// replays the identical traffic.
			var batches [][]string
			for i := 0; i < len(corpus); i += batchSize {
				end := i + batchSize
				if end > len(corpus) {
					end = len(corpus)
				}
				batches = append(batches, corpus[i:end])
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work := make(chan []string, len(batches))
				for _, batch := range batches {
					work <- batch
				}
				close(work)
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for batch := range work {
							for _, id := range postBatch(b, client, ts.URL, batch) {
								pollDone(b, client, ts.URL, id)
							}
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()

			jobs := float64(b.N * len(corpus))
			b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
			snap := s.jobLatency.Snapshot()
			b.ReportMetric(float64(snap.P50NS)/1e6, "p50-ms")
			b.ReportMetric(float64(snap.P99NS)/1e6, "p99-ms")
		})
	}
}
