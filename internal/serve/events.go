package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// This file is GET /v1/events: a live Server-Sent Events stream of the
// job lifecycle, so an operator (or the `relsched top` dashboard) can
// watch admission and completion in real time without polling
// /v1/status. One event is published per lifecycle transition:
//
//	admitted   job passed every admission gate (one per 202'd job)
//	shed       jobs refused at admission, with the reason
//	started    a worker claimed the job
//	patched    PATCH /v1/jobs/{id} applied graph edits
//	done       terminal success
//	failed     terminal failure
//	flight     the flight recorder dumped a bundle for the job
//
// Every accepted job produces exactly one of done|failed — the same
// exactly-once promise Drain makes for results, extended to the stream
// (pinned by TestEventsLifecycleConservation).
//
// Delivery is best-effort by design: each subscriber gets a bounded
// buffer, and a subscriber that cannot keep up is disconnected — its
// buffer is not allowed to grow and the publisher never blocks, so a
// stalled `curl -N` can never stall the scheduling pipeline. Drops are
// counted in serve.events.dropped, and the disconnect tells the
// consumer it has a gap (it can re-subscribe and re-sync off
// /v1/status) instead of silently thinning the stream.

// Event lifecycle types.
const (
	EventAdmitted = "admitted"
	EventShed     = "shed"
	EventStarted  = "started"
	EventPatched  = "patched"
	EventDone     = "done"
	EventFailed   = "failed"
	EventFlight   = "flight"
	// EventSLOBurn announces an SLO burn-rate trigger: the error budget
	// is burning past the paging threshold on both the fast and slow
	// windows. Reason carries the burn summary; Flight the bundle path
	// (when the dump was not rate-limited).
	EventSLOBurn = "slo_burn"
)

// Event is one lifecycle transition on the /v1/events stream (the SSE
// `data:` payload; the SSE `event:` field repeats Type).
type Event struct {
	// Seq is the hub's publication sequence number; a gap after a
	// reconnect tells the consumer how much it missed.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	// Job and Tenant identify the subject (Job is empty for shed events —
	// shed jobs were never assigned IDs).
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// RequestID correlates the event with the submitting request's
	// X-Request-ID (and through it the trace and any exemplars).
	RequestID string `json:"request_id,omitempty"`
	// Reason is the shed reason (rate, quota, queue_full) on shed events
	// and the error kind on failed events.
	Reason string `json:"reason,omitempty"`
	// Jobs is the batch size on shed events; Edits the edit count on
	// patched events.
	Jobs  int `json:"jobs,omitempty"`
	Edits int `json:"edits,omitempty"`
	// Flight is the bundle path on flight events.
	Flight string `json:"flight,omitempty"`
	// TS is the event time in Unix nanoseconds.
	TS int64 `json:"ts_ns"`
}

// eventBufDepth bounds one subscriber's unread backlog. At ~200 bytes
// an event this is ~50 KiB per subscriber, and deep enough that only a
// genuinely stalled consumer (not a momentarily busy one) overflows.
const eventBufDepth = 256

// eventSub is one /v1/events subscription. The hub closes ch on
// overflow or hub shutdown; the handler treats either as end-of-stream.
type eventSub struct {
	ch     chan Event
	closed bool // guarded by the hub's mu
}

// eventHub fans lifecycle events out to subscribers. Publishing is
// non-blocking: a full subscriber is disconnected and the event counted
// dropped (see the file comment). A nil hub is valid and drops
// everything silently — the zero-cost disabled state.
type eventHub struct {
	mu     sync.Mutex
	subs   map[*eventSub]struct{}
	seq    uint64
	closed bool
	// dropped counts events not delivered to some subscriber (one count
	// per event per overflowing subscriber).
	dropped func(uint64)
}

func newEventHub(dropped func(uint64)) *eventHub {
	if dropped == nil {
		dropped = func(uint64) {}
	}
	return &eventHub{subs: make(map[*eventSub]struct{}), dropped: dropped}
}

// subscribe registers a new subscriber. On a closed hub the returned
// channel is already closed (the stream ends immediately).
func (h *eventHub) subscribe() *eventSub {
	sub := &eventSub{ch: make(chan Event, eventBufDepth)}
	h.mu.Lock()
	if h.closed {
		sub.closed = true
		close(sub.ch)
	} else {
		h.subs[sub] = struct{}{}
	}
	h.mu.Unlock()
	return sub
}

// unsubscribe removes a subscriber (client went away). Idempotent, and
// safe against a concurrent overflow disconnect.
func (h *eventHub) unsubscribe(sub *eventSub) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
	h.mu.Unlock()
}

// publish stamps and fans out one event. Never blocks: a subscriber
// whose buffer is full is disconnected and the miss counted.
func (h *eventHub) publish(ev Event) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	ev.Seq = h.seq
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			delete(h.subs, sub)
			sub.closed = true
			close(sub.ch)
			h.dropped(1)
		}
	}
	h.mu.Unlock()
}

// subscribers reports the live subscription count (for /v1/status).
func (h *eventHub) subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close ends every subscription (drain: the last terminal event has
// been published, so streams complete rather than hang).
func (h *eventHub) close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
	h.mu.Unlock()
}

// event builds a lifecycle event stamped with the server clock.
func (s *Server) event(typ string, rec *jobRecord) Event {
	ev := Event{Type: typ, TS: s.now().UnixNano()}
	if rec != nil {
		ev.Job = rec.id
		ev.Tenant = rec.tenant
		ev.RequestID = rec.requestID
	}
	return ev
}

// handleEvents is GET /v1/events: the SSE stream. Subscribing during
// drain is allowed (the stream ends as soon as the hub closes); the
// stream also ends when the subscriber falls behind (see eventHub).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET /v1/events")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line both confirms the subscription to the
	// client and forces the 200 and headers onto the wire.
	fmt.Fprintf(w, ": stream open %s\n\n", s.now().UTC().Format(time.RFC3339))
	flusher.Flush()

	sub := s.events.subscribe()
	defer s.events.unsubscribe(sub)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				// Hub closed (drain) or this subscriber overflowed; either
				// way the stream is complete.
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			flusher.Flush()
		}
	}
}
