package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// This file owns the one listener-lifecycle helper shared by every HTTP
// surface the repo exposes: the `relsched serve` daemon and the
// `relsched batch -pprof` debug server. It exists because the two used
// to risk diverging copies of the same subtle code — the original batch
// helper fired http.Serve on a raw listener in a goroutine and only
// ever closed the listener, leaking the serve goroutine past the batch
// and cutting in-flight scrapes mid-response. The lifecycle below is
// the fix, written once: Close performs a graceful http.Server.Shutdown
// (stop accepting, drain in-flight requests, bounded by a timeout),
// force-closes stragglers, and waits for the serve goroutine to exit
// before returning.

// ShutdownTimeout bounds how long HTTPServer.Close waits for in-flight
// requests to drain before force-closing them.
const ShutdownTimeout = 2 * time.Second

// HTTPServer binds a TCP listener to an http.Handler with a correct
// shutdown lifecycle. Create one with StartHTTP.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine returns
}

// StartHTTP listens on addr (":0" picks a free port, see Addr) and
// serves handler on it in a background goroutine until Close.
func StartHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: handler},
		done: make(chan struct{}),
	}
	go func() {
		defer close(hs.done)
		// Serve returns ErrServerClosed after Shutdown/Close; nothing to
		// report either way.
		_ = hs.srv.Serve(ln)
	}()
	return hs, nil
}

// Addr returns the bound listen address (useful with ":0").
func (hs *HTTPServer) Addr() net.Addr { return hs.ln.Addr() }

// Done is closed when the serve goroutine has exited (always the case
// once Close returns); tests assert the no-leak guarantee on it.
func (hs *HTTPServer) Done() <-chan struct{} { return hs.done }

// Close gracefully shuts the server down: new connections are refused,
// in-flight requests drain (bounded by ShutdownTimeout, then
// force-closed), and the serve goroutine has exited by the time Close
// returns.
func (hs *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	err := hs.srv.Shutdown(ctx)
	if err != nil {
		// Drain timeout or shutdown error: cut the stragglers.
		err = hs.srv.Close()
	}
	<-hs.done
	return err
}

// MountDebug mounts the shared observability surface on mux: the live
// span tree at /debug/trace (a valid empty trace when tracing is off),
// the Prometheus text exposition of reg at /metrics (namespace
// "relsched", re-snapshotted per scrape), and /healthz + /readyz
// probes. healthz is process liveness and always answers 200; readyz
// answers 200 while ready() is true and 503 once it flips (nil means
// always ready — the batch server's semantics, where readiness is "the
// listener is up"). The registry is also published to expvar under
// "relsched_engine" so /debug/vars (mounted by callers that want the
// default mux, e.g. for net/http/pprof) carries it.
func MountDebug(mux *http.ServeMux, reg *obs.Registry, tracer *trace.Tracer, ready func() bool) {
	reg.PublishExpvar("relsched_engine")
	mux.Handle("/debug/trace", tracer.Handler())
	mux.Handle("/metrics", obs.PrometheusHandler(reg, "relsched"))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
}
