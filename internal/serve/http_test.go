package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestStartHTTPLifecycle(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	hs, err := StartHTTP("localhost:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + hs.Addr().String()

	resp, err := http.Get(url + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ping = %d, want 200", resp.StatusCode)
	}

	if err := hs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close returning implies the serve goroutine exited.
	select {
	case <-hs.Done():
	default:
		t.Error("Done() open after Close returned")
	}
	if _, err := http.Get(url + "/ping"); err == nil {
		t.Error("listener still accepting after Close")
	}
	// Close is idempotent.
	_ = hs.Close()
}

func TestMountDebugSurface(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.jobs.done").Add(3)
	tracer := trace.New(trace.Options{})
	var ready atomic.Bool
	ready.Store(true)

	mux := http.NewServeMux()
	MountDebug(mux, reg, tracer, ready.Load)
	hs, err := StartHTTP("localhost:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	url := "http://" + hs.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while ready = %d, want 200", code)
	}
	ready.Store(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	ready.Store(true)

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "relsched_engine_jobs_done_total 3") {
		t.Errorf("/metrics missing the counter:\n%s", body)
	}
	if err := obs.LintPrometheusText(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics fails promlint: %v", err)
	}
	// Tracing is off, but the endpoint still answers with a valid empty
	// trace rather than 404ing the operator.
	if code, _ := get("/debug/trace"); code != http.StatusOK {
		t.Errorf("/debug/trace = %d, want 200", code)
	}
}

func TestCloseDrainsInFlightRequests(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprintln(w, "done")
	})
	hs, err := StartHTTP("localhost:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + hs.Addr().String()

	type result struct {
		code int
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		got <- result{code: resp.StatusCode}
	}()
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- hs.Close() }()
	// Give Shutdown a moment to begin, then let the handler finish: the
	// in-flight request must complete, not be cut.
	time.Sleep(20 * time.Millisecond)
	close(release)

	r := <-got
	if r.err != nil || r.code != http.StatusOK {
		t.Errorf("in-flight request across Close = %+v, want 200", r)
	}
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
}
