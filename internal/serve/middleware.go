package serve

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// This file is the request-scoped half of the ops plane: a middleware
// wrapped around the whole API mux that gives every request a
// correlation identity before any handler runs, and settles the RED
// accounting after it returns. Per request it:
//
//   - ingests (or mints) a W3C `traceparent` and an `X-Request-ID`,
//     echoes both on the response, and parks them in the request
//     context so the intake path can pin them to accepted jobs;
//   - opens a root span named "request" — the job span the engine opens
//     later is a *child* of it (engine.Job.Parent), so one trace tree
//     spans intake → queue → schedule → terminal result;
//   - records serve.http.requests{route,method,code} with the route
//     normalized onto the fixed route table below — never the raw URL,
//     which is attacker-chosen and would mint unbounded label values.
//
// The span is ended when the handler returns, which is before the job
// it admitted runs. That is safe by design: engine.Job.Parent only
// reads the span's immutable identity (ID, Root), never its buffers.

// requestIDHeader echoes and ingests the caller's request correlation
// ID; traceParentHeader is the W3C trace-context header (lowercase on
// the wire per spec; Go's header map canonicalizes either way).
const (
	requestIDHeader   = "X-Request-Id"
	traceParentHeader = "Traceparent"
)

// maxRequestIDLen bounds an ingested X-Request-ID; longer values are
// replaced (not truncated — a truncated ID correlates with nothing).
const maxRequestIDLen = 128

// reqMeta is one request's correlation identity, carried in the request
// context from the middleware to the intake path.
type reqMeta struct {
	span        *trace.Span // request root span; nil when tracing is off
	requestID   string
	traceParent string // outgoing traceparent (this request's span as parent-id)
}

type reqMetaKey struct{}

// requestMeta extracts the middleware's identity from a request context;
// the zero meta (no span, empty IDs) means the middleware did not run
// (direct handler tests).
func requestMeta(r *http.Request) *reqMeta {
	if m, ok := r.Context().Value(reqMetaKey{}).(*reqMeta); ok {
		return m
	}
	return &reqMeta{}
}

// routeLabel normalizes a URL path onto the fixed route table so the
// route label's cardinality is bounded by construction, not by the cap.
func routeLabel(path string) string {
	switch {
	case path == "/v1/jobs":
		return "/v1/jobs"
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case path == "/v1/status":
		return "/v1/status"
	case path == "/v1/slo":
		return "/v1/slo"
	case path == "/v1/admin/config":
		return "/v1/admin/config"
	case path == "/v1/admin/profile":
		return "/v1/admin/profile"
	case path == "/v1/events":
		return "/v1/events"
	case path == "/metrics":
		return "/metrics"
	case path == "/healthz":
		return "/healthz"
	case path == "/readyz":
		return "/readyz"
	case strings.HasPrefix(path, "/debug/"):
		return "/debug"
	default:
		return "other"
	}
}

// randHex returns n random bytes hex-encoded (2n characters).
// crypto/rand failure is unheard of on the platforms we run on; fall
// back to the span-free all-zero ID rather than panicking in serving.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(b)
}

// parseTraceParent validates a W3C traceparent header
// (version-traceid-parentid-flags, e.g. 00-4bf9...-00f0...-01) and
// returns its trace-id and flags. Only the 00 version's shape is
// checked; all-zero trace-ids are invalid per spec.
func parseTraceParent(h string) (traceID, flags string, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return "", "", false
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	for _, p := range parts {
		if _, err := hex.DecodeString(p); err != nil {
			return "", "", false
		}
	}
	if parts[1] == strings.Repeat("0", 32) || parts[0] == "ff" {
		return "", "", false
	}
	return parts[1], parts[3], true
}

// spanHex renders a span ID as the 16-hex-digit parent-id field of a
// traceparent. Span ID 0 (tracing off) still yields a valid non-zero
// parent-id by convention: the request ID keeps correlation alive even
// without a tracer, so we burn one random ID instead of emitting the
// invalid all-zero field.
func spanHex(id trace.SpanID) string {
	if id == 0 {
		return randHex(8)
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// statusRecorder captures the response code for the RED counter while
// passing Flusher/Hijacker through — the SSE stream needs per-event
// flushes and would silently buffer forever behind a plain wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := sr.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// withRequestScope wraps the API mux with the request-scoped ops plane
// (see the file comment).
func (s *Server) withRequestScope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The trace ring's drop counter is surfaced as a gauge; syncing it
		// here (two atomics) keeps every /metrics scrape and /v1/status
		// read current without a background ticker.
		s.spansDropped.Set(int64(s.tracer.Dropped()))

		route := routeLabel(r.URL.Path)

		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" || len(reqID) > maxRequestIDLen {
			reqID = "req-" + randHex(8)
		}
		traceID, flags, ok := parseTraceParent(r.Header.Get(traceParentHeader))
		if !ok {
			traceID, flags = randHex(16), "01"
		}

		span := s.tracer.StartSpan("request")
		span.SetStr("route", route)
		span.SetStr("method", r.Method)
		span.SetStr("request_id", reqID)
		span.SetStr("trace_id", traceID)

		meta := &reqMeta{
			span:        span,
			requestID:   reqID,
			traceParent: "00-" + traceID + "-" + spanHex(span.ID()) + "-" + flags,
		}
		w.Header().Set(requestIDHeader, reqID)
		w.Header().Set(traceParentHeader, meta.traceParent)

		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, meta)))

		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		span.SetInt("code", int64(rec.code))
		span.End()
		s.httpReqVec.With(route, r.Method, strconv.Itoa(rec.code)).Inc()
	})
}
