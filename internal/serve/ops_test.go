package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Tests for the request-scoped ops plane: trace-context propagation,
// RED metrics, latency exemplars, and the /v1/events stream.

// opsServer builds a Server with tracing and a flight recorder wired
// through the engine, the full middleware-wrapped handler mounted on an
// httptest server.
func opsServer(t *testing.T, mutate func(*Options), fl flight.Options) (*Server, *httptest.Server, *trace.Tracer) {
	t.Helper()
	tracer := trace.New(trace.Options{})
	var rec *flight.Recorder
	if fl.Dir != "" {
		var err error
		rec, err = flight.New(fl)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng := engine.New(engine.Options{Workers: 2, Tracer: tracer, Flight: rec})
	opts := Options{Engine: eng, Workers: 2, Tracer: tracer, Flight: rec}
	if mutate != nil {
		mutate(&opts)
	}
	opts.Engine = eng
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		ts.Close()
	})
	return s, ts, tracer
}

// TestRequestCorrelationEndToEnd pins the tentpole promise: one
// identity follows a job from the POST's traceparent through the span
// tree, the JobView echo, the latency exemplar, and the flight bundle.
func TestRequestCorrelationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// FixedThreshold 1ns forces the latency trigger on every job, so the
	// scheduled job dumps a bundle whose path must ride the exemplar.
	s, ts, tracer := opsServer(t, nil, flight.Options{
		Dir: dir, FixedThreshold: time.Nanosecond, MinInterval: -1,
	})
	// Gate the job until the request span is committed, so the flight
	// dump's ring snapshot deterministically contains the request root.
	gate := make(chan struct{})
	s.testJobGate = gate

	const wantTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(singleJob("corr")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", "00-"+wantTraceID+"-00f067aa0ba902b7-01")
	req.Header.Set("X-Request-Id", "req-e2e")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	views := decodeJobs(t, resp)

	// The response echoes the request ID and a traceparent continuing
	// the caller's trace with this request's span as parent-id.
	if got := resp.Header.Get("X-Request-Id"); got != "req-e2e" {
		t.Errorf("X-Request-Id echoed as %q, want req-e2e", got)
	}
	tp := resp.Header.Get("Traceparent")
	traceID, _, ok := parseTraceParent(tp)
	if !ok || traceID != wantTraceID {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, wantTraceID)
	}
	parentHex := strings.Split(tp, "-")[2]
	reqSpanID, err := strconv.ParseUint(parentHex, 16, 64)
	if err != nil || reqSpanID == 0 {
		t.Fatalf("response traceparent parent-id %q is not a span ID", parentHex)
	}
	if len(views) != 1 || views[0].RequestID != "req-e2e" || views[0].TraceParent != tp {
		t.Fatalf("JobView echo = %+v, want request_id req-e2e and traceparent %s", views, tp)
	}

	// Release the job only once the POST's request span is in the ring.
	waitFor(t, "request span committed", func() bool {
		for _, sd := range tracer.Snapshot() {
			if uint64(sd.ID) == reqSpanID {
				return true
			}
		}
		return false
	})
	close(gate)

	// Wait for the terminal JobView and check the stored echo survives.
	var final JobView
	waitFor(t, "job corr terminal", func() bool {
		r, err := ts.Client().Get(ts.URL + "/v1/jobs/corr")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
			return false
		}
		return final.Status == StatusDone || final.Status == StatusFailed
	})
	if final.Status != StatusDone {
		t.Fatalf("job corr = %+v, want done", final)
	}
	if final.RequestID != "req-e2e" || final.TraceParent != tp {
		t.Errorf("stored JobView echo = request_id %q traceparent %q, want req-e2e / %s",
			final.RequestID, final.TraceParent, tp)
	}

	// The traceparent's parent-id names the root of the job's span tree:
	// the job span is a child of the request span, sharing its root.
	var reqSpan, jobSpan *trace.SpanData
	for _, sd := range tracer.Snapshot() {
		sd := sd
		if uint64(sd.ID) == reqSpanID && sd.Name == "request" {
			reqSpan = &sd
		}
		if sd.Name == "job" && uint64(sd.Root) == reqSpanID {
			jobSpan = &sd
		}
	}
	if reqSpan == nil {
		t.Fatalf("no request span with ID %d in the trace ring", reqSpanID)
	}
	if reqSpan.Root != reqSpan.ID {
		t.Errorf("request span is not a root: root=%d id=%d", reqSpan.Root, reqSpan.ID)
	}
	if jobSpan == nil {
		t.Fatalf("no job span rooted at the request span %d", reqSpanID)
	}
	if uint64(jobSpan.Parent) != reqSpanID {
		t.Errorf("job span parent = %d, want the request span %d", jobSpan.Parent, reqSpanID)
	}

	// The forced-slow job's serve.job.latency exemplar resolves to the
	// same span ID and to the flight bundle on disk.
	snap := s.eng.Metrics().Snapshot()
	exs := snap.Histograms[MetricJobLatency].Exemplars
	var found *obs.Exemplar
	for i := range exs {
		if exs[i].RequestID == "req-e2e" {
			found = &exs[i]
		}
	}
	if found == nil {
		t.Fatalf("no serve.job.latency exemplar with request_id req-e2e; have %+v", exs)
	}
	if found.SpanID != reqSpanID {
		t.Errorf("exemplar span = %x, want the request span %x", found.SpanID, reqSpanID)
	}
	if found.FlightPath == "" {
		t.Fatal("exemplar carries no flight bundle path for a forced-slow job")
	}
	if _, err := os.Stat(found.FlightPath); err != nil {
		t.Errorf("exemplar flight path does not resolve: %v", err)
	}
	// And the bundle's span section carries the request tree.
	data, err := os.ReadFile(found.FlightPath)
	if err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Job struct {
			Spans []trace.SpanData `json:"spans"`
		} `json:"job"`
	}
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatal(err)
	}
	sawRequest := false
	for _, sd := range bundle.Job.Spans {
		if uint64(sd.ID) == reqSpanID && sd.Name == "request" {
			sawRequest = true
		}
	}
	if !sawRequest {
		t.Errorf("flight bundle span tree lacks the request root span %d", reqSpanID)
	}
}

// TestRequestIdentityGenerated: a bare request still gets a request ID
// and a valid traceparent minted for it.
func TestRequestIdentityGenerated(t *testing.T) {
	_, ts, _ := opsServer(t, nil, flight.Options{})
	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "req-") {
		t.Errorf("generated X-Request-Id = %q, want req-<hex>", got)
	}
	if tp := resp.Header.Get("Traceparent"); tp == "" {
		t.Error("no traceparent minted")
	} else if _, _, ok := parseTraceParent(tp); !ok {
		t.Errorf("minted traceparent %q is not valid", tp)
	}
}

// TestHTTPRequestsLabeled pins the RED counter: requests land in
// serve.http.requests{route,method,code} with normalized routes, the
// exposition carries the labels, and both text formats pass the linter.
func TestHTTPRequestsLabeled(t *testing.T) {
	_, ts, _ := opsServer(t, nil, flight.Options{})

	for i := 0; i < 2; i++ {
		if code := getStatusCode(t, ts, "/v1/status"); code != 200 {
			t.Fatalf("GET /v1/status = %d", code)
		}
	}
	_ = decodeJobs(t, postJobs(t, ts, "acme", "application/json", singleJob("red-1")))
	if code := getStatusCode(t, ts, "/no/such/path"); code != 404 {
		t.Fatalf("GET /no/such/path = %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`relsched_serve_http_requests_total{route="/v1/status",method="GET",code="200"} 2`,
		`relsched_serve_http_requests_total{route="/v1/jobs",method="POST",code="202"} 1`,
		`relsched_serve_http_requests_total{route="other",method="GET",code="404"} 1`,
		`relsched_serve_tenant_jobs_total{tenant="acme",outcome="accepted"} 1`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if err := obs.LintPrometheusText(strings.NewReader(body)); err != nil {
		t.Errorf("labeled exposition fails lint: %v", err)
	}

	// The OpenMetrics negotiation path must lint too.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheusText(strings.NewReader(om)); err != nil {
		t.Errorf("OpenMetrics exposition fails lint: %v", err)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}

// TestTenantJobsCardinalityBounded: spraying distinct tenant names
// through admission cannot mint unbounded serve.tenant.jobs series —
// past the label budget newcomers collapse into "other" and the total
// is conserved.
func TestTenantJobsCardinalityBounded(t *testing.T) {
	s := testServer(t, 1, nil)
	n := obs.DefaultMaxLabelValues * 2
	for i := 0; i < n; i++ {
		s.tenantJobs.With(fmt.Sprintf("attacker-%d", i), "accepted").Inc()
	}
	series := s.tenantJobs.Snapshot()
	if len(series) > obs.DefaultMaxLabelValues+1 {
		t.Fatalf("tenant spray minted %d series, cap is %d+overflow",
			len(series), obs.DefaultMaxLabelValues)
	}
	var total, overflow uint64
	for _, sv := range series {
		total += sv.Value
		if sv.Labels["tenant"] == obs.OverflowLabel {
			overflow = sv.Value
		}
	}
	if total != uint64(n) {
		t.Errorf("spray total = %d, want %d (conservation through the collapse)", total, n)
	}
	if overflow != uint64(n-obs.DefaultMaxLabelValues) {
		t.Errorf("overflow bucket = %d, want %d", overflow, n-obs.DefaultMaxLabelValues)
	}
}

// sseEvent is one parsed /v1/events frame.
type sseEvent struct {
	name string
	ev   Event
}

// readSSE consumes an SSE body until EOF, signaling readiness once the
// stream-open comment arrives.
func readSSE(resp *http.Response, ready chan<- struct{}, out chan<- sseEvent) {
	defer close(out)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": stream open"):
			if ready != nil {
				close(ready)
				ready = nil
			}
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil {
				out <- sseEvent{name: name, ev: ev}
			}
		}
	}
}

// TestEventsLifecycleConservation pins the stream's exactly-once
// promise: every accepted job appears as one admitted, one started, and
// exactly one terminal event, and the stream completes at drain.
func TestEventsLifecycleConservation(t *testing.T) {
	s, ts, _ := opsServer(t, nil, flight.Options{})

	resp, err := ts.Client().Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events = %d", resp.StatusCode)
	}
	ready := make(chan struct{})
	out := make(chan sseEvent, 256)
	go readSSE(resp, ready, out)
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream never opened")
	}

	const n = 5
	views := decodeJobs(t, postJobs(t, ts, "ten", "application/json", batchJobs(n)))
	if len(views) != n {
		t.Fatalf("accepted %d jobs, want %d", len(views), n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	admitted := map[string]int{}
	started := map[string]int{}
	terminal := map[string]int{}
	var lastSeq uint64
	for se := range out {
		if se.ev.Seq <= lastSeq {
			t.Errorf("event seq not increasing: %d after %d", se.ev.Seq, lastSeq)
		}
		lastSeq = se.ev.Seq
		if se.name != se.ev.Type {
			t.Errorf("SSE event name %q != payload type %q", se.name, se.ev.Type)
		}
		switch se.ev.Type {
		case EventAdmitted:
			admitted[se.ev.Job]++
		case EventStarted:
			started[se.ev.Job]++
		case EventDone, EventFailed:
			terminal[se.ev.Job]++
		}
	}
	for _, v := range views {
		if admitted[v.ID] != 1 {
			t.Errorf("job %s: %d admitted events, want exactly 1", v.ID, admitted[v.ID])
		}
		if started[v.ID] != 1 {
			t.Errorf("job %s: %d started events, want exactly 1", v.ID, started[v.ID])
		}
		if terminal[v.ID] != 1 {
			t.Errorf("job %s: %d terminal events, want exactly 1", v.ID, terminal[v.ID])
		}
	}
	if len(terminal) != n {
		t.Errorf("terminal events for %d jobs, want %d", len(terminal), n)
	}
}

// TestEventsShedCarriesReason: a refused batch emits one shed event
// with the machine-readable reason.
func TestEventsShedCarriesReason(t *testing.T) {
	s, ts, _ := opsServer(t, func(o *Options) {
		o.TenantQuota = 1
		o.Workers = 1
	}, flight.Options{})
	gate := make(chan struct{})
	s.testJobGate = gate

	resp, err := ts.Client().Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan struct{})
	out := make(chan sseEvent, 64)
	go readSSE(resp, ready, out)
	<-ready

	// First job occupies the quota (held in flight by the gate); the
	// second is shed with reason quota.
	decodeJobs(t, postJobs(t, ts, "q", "application/json", singleJob("held")))
	r2 := postJobs(t, ts, "q", "application/json", singleJob("refused"))
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second job = %d, want 429", r2.StatusCode)
	}
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	sawShed := false
	for se := range out {
		if se.ev.Type == EventShed {
			sawShed = true
			if se.ev.Reason != "quota" || se.ev.Jobs != 1 || se.ev.Tenant != "q" {
				t.Errorf("shed event = %+v, want reason quota, jobs 1, tenant q", se.ev)
			}
		}
	}
	if !sawShed {
		t.Error("no shed event on the stream")
	}
}

// TestEventsSlowSubscriberDropped: a subscriber that stops reading is
// disconnected at the buffer bound, the miss is counted, and publishing
// never blocks.
func TestEventsSlowSubscriberDropped(t *testing.T) {
	s := testServer(t, 1, nil)
	sub := s.events.subscribe()

	// Fill the buffer and push one past it; the publisher must return
	// (non-blocking) with the subscriber disconnected.
	for i := 0; i < eventBufDepth+1; i++ {
		s.events.publish(Event{Type: EventAdmitted, Job: fmt.Sprintf("j%d", i)})
	}
	drained := 0
	closed := false
	for !closed {
		select {
		case _, ok := <-sub.ch:
			if !ok {
				closed = true
				break
			}
			drained++
		case <-time.After(time.Second):
			t.Fatal("subscriber channel neither drained nor closed")
		}
	}
	if drained != eventBufDepth {
		t.Errorf("drained %d buffered events, want %d", drained, eventBufDepth)
	}
	snap := s.eng.Metrics().Snapshot()
	if got := snap.Counters[MetricEventsDropped]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricEventsDropped, got)
	}
	// A healthy subscriber is unaffected by the other's disconnect.
	sub2 := s.events.subscribe()
	s.events.publish(Event{Type: EventDone, Job: "after"})
	select {
	case ev := <-sub2.ch:
		if ev.Job != "after" {
			t.Errorf("healthy subscriber got %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("healthy subscriber starved after the slow one was dropped")
	}
	s.events.unsubscribe(sub2)
}

// TestLimiterConcurrentAdmitRelease exercises the limiter under -race:
// concurrent admits and releases across a small tenant set, with a
// policy hot-swap racing them.
func TestLimiterConcurrentAdmitRelease(t *testing.T) {
	l := newTenantLimiter(1e9, 1<<30, 4, time.Now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 500; i++ {
				if v := l.admit(tenant, 1); v.ok {
					l.release(tenant)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			l.setPolicy(1e9, 1<<30, 4+i%3)
			l.policy()
		}
	}()
	wg.Wait()
	// Everything admitted was released: every tenant ends idle.
	for name, ts := range l.tenants {
		if ts.active != 0 {
			t.Errorf("tenant %s ends with %d active jobs, want 0", name, ts.active)
		}
	}
}

// TestStatusCarriesOpsCounters: /v1/status surfaces the delta counters,
// patch total, and the span-drop gauge.
func TestStatusCarriesOpsCounters(t *testing.T) {
	// A 1-span ring guarantees drops once a few requests have run.
	tracer := trace.New(trace.Options{Capacity: 1})
	eng := engine.New(engine.Options{Workers: 1, Tracer: tracer})
	s, err := New(Options{Engine: eng, Workers: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		getStatusCode(t, ts, "/v1/status")
	}
	var sv StatusView
	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.SpansDropped == 0 {
		t.Error("spans_dropped = 0 with a 1-span ring after several requests")
	}
	// The reporting request itself commits one more span after the
	// snapshot, so the live count may be ahead — never behind.
	if live := tracer.Dropped(); sv.SpansDropped > live {
		t.Errorf("spans_dropped = %d, ahead of the tracer's %d", sv.SpansDropped, live)
	}
	// The gauge mirrors it on the scrape path too.
	if got := eng.Metrics().Snapshot().Gauges[MetricSpansDropped]; got == 0 {
		t.Errorf("%s gauge = %d, want the synced drop count", MetricSpansDropped, got)
	}
}

// TestStatusEventAndRuntimeFields: /v1/status reports the live SSE
// subscriber count, the events-dropped counter, and (when a runtime
// sampler is wired) the Go runtime telemetry block.
func TestStatusEventAndRuntimeFields(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Options{Workers: 1, Metrics: reg})
	s, err := New(Options{
		Engine:          eng,
		Workers:         1,
		Runtime:         obs.NewRuntimeSampler(reg),
		RuntimeInterval: time.Hour, // Status samples on read; no poll churn
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func() StatusView {
		t.Helper()
		var sv StatusView
		resp, err := ts.Client().Get(ts.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
			t.Fatal(err)
		}
		return sv
	}

	sv := status()
	if sv.EventSubscribers != 0 {
		t.Fatalf("event_subscribers = %d before any stream, want 0", sv.EventSubscribers)
	}
	if sv.EventsDropped != 0 {
		t.Fatalf("events_dropped = %d on a fresh server, want 0", sv.EventsDropped)
	}
	if sv.Runtime == nil {
		t.Fatal("runtime block absent with a sampler wired")
	}
	if sv.Runtime.Goroutines <= 0 || sv.Runtime.HeapLiveBytes <= 0 {
		t.Errorf("runtime block not populated: %+v", sv.Runtime)
	}

	// Attach one SSE subscriber and watch the count follow it.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "one SSE subscriber", func() bool { return status().EventSubscribers == 1 })

	cancel()
	waitFor(t, "subscriber detached", func() bool { return status().EventSubscribers == 0 })

	// Without a sampler the block is omitted entirely.
	s2 := testServer(t, 1, nil)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var sv2 StatusView
	getJSON(t, ts2, "/v1/status", &sv2)
	if sv2.Runtime != nil {
		t.Errorf("runtime block present without a sampler: %+v", sv2.Runtime)
	}
}
