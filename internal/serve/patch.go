package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cg"
	"repro/internal/logx"
	"repro/internal/relsched"
)

// This file is PATCH /v1/jobs/{id}: reactive what-if editing of a
// completed job's constraint graph through the engine's cone-bounded
// delta path (Engine.ApplyDelta), instead of resubmitting a full graph
// per probe. The first patch forks the job's schedule — engine cache
// entries are shared and immutable — so edits never leak into other
// jobs with the same fingerprint; follow-up patches chain on the fork.
// Endpoint, status codes, and body shapes are documented with curl
// transcripts in docs/SERVICE.md.

// EditRequest is one graph edit of a PATCH body. Vertices are named (the
// names of the job's .cg source); constraints are identified by their
// endpoints as the client wrote them — the server handles the Table I
// backward storage of maximum constraints internally.
type EditRequest struct {
	// Op selects the edit: add_min, add_max, add_serialization,
	// remove_min, remove_max, remove_serialization, insert_op.
	Op string `json:"op"`
	// From/To name the constraint endpoints (all ops except insert_op).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Weight is the constraint bound: l for add_min, u for add_max.
	Weight int `json:"weight,omitempty"`
	// insert_op fields: a new operation Name with Delay cycles (or an
	// unbounded delay when Unbounded is set), spliced between Pred and
	// Succ. Unbounded inserts are always refused with 422 anchor_drift —
	// they would add an anchor, which the delta contract forbids — but the
	// field exists so clients learn that from a typed refusal rather than
	// a validation 400.
	Name      string `json:"name,omitempty"`
	Delay     int    `json:"delay,omitempty"`
	Unbounded bool   `json:"unbounded,omitempty"`
	Pred      string `json:"pred,omitempty"`
	Succ      string `json:"succ,omitempty"`
}

// PatchRequest is the PATCH /v1/jobs/{id} body. Edits apply atomically:
// either every edit is applied and the response carries the re-scheduled
// offsets, or none is and the job is unchanged.
type PatchRequest struct {
	Edits []EditRequest `json:"edits"`
}

// resolveEdit translates one EditRequest against the job's graph.
// Resolution errors (unknown op, unknown vertex, no matching constraint)
// are client errors — the handler maps them to 400.
func resolveEdit(g *cg.Graph, i int, req EditRequest) (cg.Edit, error) {
	vertex := func(name, field string) (cg.VertexID, error) {
		if name == "" {
			return cg.None, fmt.Errorf("edit %d (%s): missing %q", i, req.Op, field)
		}
		v := g.VertexByName(name)
		if v == cg.None {
			return cg.None, fmt.Errorf("edit %d (%s): unknown vertex %q", i, req.Op, name)
		}
		return v, nil
	}
	endpoints := func() (cg.VertexID, cg.VertexID, error) {
		f, err := vertex(req.From, "from")
		if err != nil {
			return cg.None, cg.None, err
		}
		t, err := vertex(req.To, "to")
		if err != nil {
			return cg.None, cg.None, err
		}
		return f, t, nil
	}
	// findEdge locates the stored edge of a client-phrased constraint.
	// Maximum constraints are stored backward with swapped endpoints
	// (Table I), so the client's from→to max is the stored to→from edge.
	findEdge := func(kind cg.EdgeKind) (cg.Edit, error) {
		f, t, err := endpoints()
		if err != nil {
			return cg.Edit{}, err
		}
		sf, st := f, t
		if kind == cg.MaxConstraint {
			sf, st = t, f
		}
		for ei, e := range g.Edges() {
			if e.Kind == kind && e.From == sf && e.To == st {
				return cg.RemoveEdgeEdit(ei), nil
			}
		}
		return cg.Edit{}, fmt.Errorf("edit %d (%s): no %v constraint %s → %s", i, req.Op, kind, req.From, req.To)
	}
	switch req.Op {
	case "add_min":
		f, t, err := endpoints()
		if err != nil {
			return cg.Edit{}, err
		}
		if req.Weight < 0 {
			return cg.Edit{}, fmt.Errorf("edit %d (add_min): negative bound %d", i, req.Weight)
		}
		return cg.AddMinEdit(f, t, req.Weight), nil
	case "add_max":
		f, t, err := endpoints()
		if err != nil {
			return cg.Edit{}, err
		}
		return cg.AddMaxEdit(f, t, req.Weight), nil
	case "add_serialization":
		f, t, err := endpoints()
		if err != nil {
			return cg.Edit{}, err
		}
		return cg.AddSerializationEdit(f, t), nil
	case "remove_min":
		return findEdge(cg.MinConstraint)
	case "remove_max":
		return findEdge(cg.MaxConstraint)
	case "remove_serialization":
		return findEdge(cg.Serialization)
	case "insert_op":
		if req.Name == "" {
			return cg.Edit{}, fmt.Errorf("edit %d (insert_op): missing \"name\"", i)
		}
		if req.Delay < 0 {
			return cg.Edit{}, fmt.Errorf("edit %d (insert_op): negative delay %d", i, req.Delay)
		}
		p, err := vertex(req.Pred, "pred")
		if err != nil {
			return cg.Edit{}, err
		}
		q, err := vertex(req.Succ, "succ")
		if err != nil {
			return cg.Edit{}, err
		}
		d := cg.Cycles(req.Delay)
		if req.Unbounded {
			d = cg.UnboundedDelay()
		}
		return cg.InsertOpEdit(req.Name, d, p, q), nil
	default:
		return cg.Edit{}, fmt.Errorf("edit %d: unknown op %q", i, req.Op)
	}
}

// patchVerdict maps a rejected delta to its HTTP status and the
// machine-readable reason of the error body. Everything the constraint
// system itself refuses — unfeasible, inconsistent, ill-posed, a closed
// forward cycle, a polarity-breaking removal, an anchor-drifting insert —
// is a 422: the request was well-formed, the semantics reject it. The
// typed AnchorDriftError exists exactly so this mapping never falls
// through to a 500 (the old incremental path reported it as an opaque
// "internal" error).
func patchVerdict(err error) (int, string) {
	var ill *relsched.IllPosedError
	var drift *relsched.AnchorDriftError
	switch {
	case errors.As(err, &ill):
		return http.StatusUnprocessableEntity, "ill_posed"
	case errors.As(err, &drift):
		return http.StatusUnprocessableEntity, "anchor_drift"
	case errors.Is(err, relsched.ErrUnfeasible):
		return http.StatusUnprocessableEntity, "unfeasible"
	case errors.Is(err, relsched.ErrInconsistent):
		return http.StatusUnprocessableEntity, "inconsistent"
	case errors.Is(err, cg.ErrForwardCycle):
		return http.StatusUnprocessableEntity, "cycle"
	case errors.Is(err, cg.ErrEditPolarity):
		return http.StatusUnprocessableEntity, "polarity"
	case errors.Is(err, cg.ErrEditStructural):
		return http.StatusUnprocessableEntity, "structural"
	case errors.Is(err, relsched.ErrStaleSchedule):
		// renderMu serializes patches per record, so a stale schedule
		// means a concurrent writer broke the contract — surface it as a
		// conflict rather than lying with a 422.
		return http.StatusConflict, "stale"
	default:
		return http.StatusUnprocessableEntity, "rejected"
	}
}

// handleJobPatch is PATCH /v1/jobs/{id}: apply graph edits to a
// completed job and re-schedule incrementally. Responses:
//
//	200 JobView             all edits applied; offsets are the new schedule
//	400                     malformed JSON, unknown op/vertex/constraint
//	404                     unknown job id
//	409                     job is not in status "done"
//	422 {"reason":...}      the constraint system rejected the edits
//	                        (unfeasible, inconsistent, ill_posed, cycle,
//	                        polarity, structural, anchor_drift); the job
//	                        is unchanged
//	503                     draining
func (s *Server) handleJobPatch(w http.ResponseWriter, r *http.Request, id string, mode relsched.AnchorMode) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting edits")
		return
	}
	rec, ok := s.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q (never accepted, or its result was evicted)", id)
		return
	}
	var req PatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid patch: %v", err)
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, "no edits in request")
		return
	}

	// renderMu serializes this patch against other patches and against
	// offset renders of this record (Apply mutates the record's graph).
	rec.renderMu.Lock()
	s.storeMu.Lock()
	status := rec.status
	sched := rec.result.Schedule
	patches := rec.patches
	s.storeMu.Unlock()
	if status != StatusDone || sched == nil {
		rec.renderMu.Unlock()
		writeError(w, http.StatusConflict, "job %q is %s; only completed jobs can be patched", id, status)
		return
	}

	// First patch: fork off the shared (immutable) cache entry so edits
	// stay private to this job. Later patches chain on the fork.
	cur := sched
	if patches == 0 {
		f, err := sched.Fork()
		if err != nil {
			rec.renderMu.Unlock()
			status, reason := patchVerdict(err)
			writeJSON(w, status, errorBody{Error: err.Error(), Reason: reason})
			return
		}
		cur = f
	}

	edits := make([]cg.Edit, len(req.Edits))
	for i, er := range req.Edits {
		ed, err := resolveEdit(cur.G, i, er)
		if err != nil {
			rec.renderMu.Unlock()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		edits[i] = ed
	}

	next, err := s.eng.ApplyDelta(cur, edits...)
	if err != nil {
		rec.renderMu.Unlock()
		status, reason := patchVerdict(err)
		writeJSON(w, status, errorBody{Error: err.Error(), Reason: reason})
		return
	}

	s.storeMu.Lock()
	rec.result.Schedule = next
	rec.result.Info = next.Info
	rec.result.Graph = next.G
	rec.patches += len(edits)
	// The pre-rendered offset table belongs to the unpatched schedule;
	// drop it so views re-render from the edited graph.
	rec.preOffsets = ""
	s.storeMu.Unlock()
	rec.renderMu.Unlock()

	s.patched.Add(uint64(len(edits)))
	ev := s.event(EventPatched, rec)
	ev.Edits = len(edits)
	s.events.publish(ev)
	if s.log.Enabled(logx.LevelInfo) {
		s.log.Info("job patched", logx.Str("job", id), logx.Int("edits", int64(len(edits))))
	}
	writeJSON(w, http.StatusOK, s.view(rec, mode, true))
}
