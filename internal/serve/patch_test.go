package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// patchJob PATCHes body to /v1/jobs/{id}+query and returns the response.
// The caller closes the body.
func patchJob(t *testing.T, ts *httptest.Server, id, query, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+id+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeView decodes one JobView, failing unless the status matches.
func decodeView(t *testing.T, resp *http.Response, want int) JobView {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, want, b)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// decodeErr decodes an errorBody, failing unless the status matches.
func decodeErr(t *testing.T, resp *http.Response, want int) errorBody {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, want, b)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	return e
}

// getJob GETs /v1/jobs/{id} and decodes the JobView.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decodeView(t, resp, http.StatusOK)
}

// submitAndWait posts one job and polls until it is done.
func submitAndWait(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob(id)))
	var v JobView
	waitFor(t, "job "+id+" done", func() bool {
		v = getJob(t, ts, id)
		return v.Status == StatusDone
	})
	return v
}

// TestJobPatchLifecycle drives the documented happy path end to end:
// tighten with add_min (offsets move), splice a bounded operation with
// insert_op (offsets move again), then remove both min constraints over
// two PATCHes — offsets land back where seq edges alone put them, and
// the patches counter in the JobView tracks every applied edit.
func TestJobPatchLifecycle(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := submitAndWait(t, ts, "edit-me")
	if base.Offsets == "" || base.Patches != 0 {
		t.Fatalf("baseline view: offsets=%q patches=%d", base.Offsets, base.Patches)
	}

	// σ(b) is 1 from seq a→b (δ(a)=1); min a b 5 raises it to 5.
	v := decodeView(t, patchJob(t, ts, "edit-me", "",
		`{"edits":[{"op":"add_min","from":"a","to":"b","weight":5}]}`), http.StatusOK)
	if v.Patches != 1 {
		t.Errorf("patches after add_min = %d, want 1", v.Patches)
	}
	if v.Offsets == base.Offsets {
		t.Error("add_min a b 5 left the offset table unchanged")
	}
	tightened := v.Offsets

	// A GET must observe the patched schedule, not the original.
	if got := getJob(t, ts, "edit-me"); got.Offsets != tightened || got.Patches != 1 {
		t.Errorf("GET after patch: offsets match=%v patches=%d", got.Offsets == tightened, got.Patches)
	}

	// Bounded insert_op is a legal edit (no new anchor).
	v = decodeView(t, patchJob(t, ts, "edit-me", "",
		`{"edits":[{"op":"insert_op","name":"x","delay":2,"pred":"a","succ":"sink"}]}`), http.StatusOK)
	if v.Patches != 2 {
		t.Errorf("patches after insert_op = %d, want 2", v.Patches)
	}
	if !strings.Contains(v.Offsets, "x") {
		t.Errorf("offset table after insert_op is missing the new vertex:\n%s", v.Offsets)
	}

	// Remove both a→b minimum constraints (the seed's min a b 1, then the
	// patched min a b 5) in separate PATCHes — each resolves against the
	// current graph. With only seq a→b left, σ(b) falls back to δ(a) = 1,
	// exactly the baseline value.
	decodeView(t, patchJob(t, ts, "edit-me", "",
		`{"edits":[{"op":"remove_min","from":"a","to":"b"}]}`), http.StatusOK).check(t, 3)
	v = decodeView(t, patchJob(t, ts, "edit-me", "",
		`{"edits":[{"op":"remove_min","from":"a","to":"b"}]}`), http.StatusOK)
	if v.Patches != 4 {
		t.Errorf("patches after removals = %d, want 4", v.Patches)
	}
	for _, name := range []string{"a ", "b ", "sink"} {
		if !strings.Contains(v.Offsets, name) {
			t.Errorf("final offsets missing %q:\n%s", name, v.Offsets)
		}
	}

	if got := s.eng.Metrics().Snapshot().Counters[MetricJobsPatched]; got != 4 {
		t.Errorf("%s = %d, want 4", MetricJobsPatched, got)
	}
}

// check asserts the view's patch count inline.
func (v JobView) check(t *testing.T, patches int) {
	t.Helper()
	if v.Patches != patches {
		t.Errorf("patches = %d, want %d", v.Patches, patches)
	}
}

// TestJobPatchRejections pins every refusal path: semantic 422s leave
// the job untouched, resolution errors are 400s, and the mode query is
// validated before any work.
func TestJobPatchRejections(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitAndWait(t, ts, "probe")
	before := getJob(t, ts, "probe")

	// seq a→b forces σ(b) ≥ σ(a)+1; max a b 0 demands σ(b) ≤ σ(a).
	e := decodeErr(t, patchJob(t, ts, "probe", "",
		`{"edits":[{"op":"add_max","from":"a","to":"b","weight":0}]}`), http.StatusUnprocessableEntity)
	if e.Reason != "unfeasible" {
		t.Errorf("unfeasible max: reason = %q, want unfeasible", e.Reason)
	}

	// An unbounded insert would mint a new anchor — typed refusal, not a
	// 500 (the regression this endpoint's error mapping exists to pin).
	e = decodeErr(t, patchJob(t, ts, "probe", "",
		`{"edits":[{"op":"insert_op","name":"u","unbounded":true,"pred":"a","succ":"b"}]}`), http.StatusUnprocessableEntity)
	if e.Reason != "anchor_drift" {
		t.Errorf("unbounded insert: reason = %q, want anchor_drift", e.Reason)
	}

	// Removing a sequencing edge's sibling that does not exist, unknown
	// vertices, unknown ops, malformed bodies: client errors.
	for name, body := range map[string]string{
		"unknown op":     `{"edits":[{"op":"tighten","from":"a","to":"b"}]}`,
		"unknown vertex": `{"edits":[{"op":"add_min","from":"a","to":"nope","weight":1}]}`,
		"no such max":    `{"edits":[{"op":"remove_max","from":"a","to":"b"}]}`,
		"negative min":   `{"edits":[{"op":"add_min","from":"a","to":"b","weight":-2}]}`,
		"empty edits":    `{"edits":[]}`,
		"bad json":       `{"edits":`,
		"unknown field":  `{"edits":[{"op":"add_min","from":"a","to":"b","bound":3}]}`,
	} {
		if resp := patchJob(t, ts, "probe", "", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
			resp.Body.Close()
		} else {
			resp.Body.Close()
		}
	}

	if resp := patchJob(t, ts, "probe", "?mode=bogus", `{"edits":[{"op":"add_min","from":"a","to":"b","weight":2}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status = %d, want 400", resp.StatusCode)
		resp.Body.Close()
	} else {
		resp.Body.Close()
	}

	if resp := patchJob(t, ts, "no-such-job", "", `{"edits":[{"op":"add_min","from":"a","to":"b","weight":2}]}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", resp.StatusCode)
		resp.Body.Close()
	} else {
		resp.Body.Close()
	}

	// Every refusal above left the job byte-identical.
	after := getJob(t, ts, "probe")
	if after.Offsets != before.Offsets || after.Patches != 0 {
		t.Errorf("rejected patches changed the job: patches=%d, offsets drifted=%v",
			after.Patches, after.Offsets != before.Offsets)
	}
}

// TestJobPatchNotDone holds a job at the worker gate and confirms PATCH
// answers 409 until the job completes.
func TestJobPatchNotDone(t *testing.T) {
	s := testServer(t, 1, nil)
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob("held")))
	// The worker is parked at the gate, so the job is not done yet.
	if got := getJob(t, ts, "held").Status; got == StatusDone {
		t.Fatal("gated job reported done")
	}
	if resp := patchJob(t, ts, "held", "", `{"edits":[{"op":"add_min","from":"a","to":"b","weight":2}]}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("PATCH on unfinished job = %d, want 409", resp.StatusCode)
		resp.Body.Close()
	} else {
		resp.Body.Close()
	}
	close(gate)
	waitFor(t, "job done", func() bool { return getJob(t, ts, "held").Status == StatusDone })
	decodeView(t, patchJob(t, ts, "held", "",
		`{"edits":[{"op":"add_min","from":"a","to":"b","weight":2}]}`), http.StatusOK)
}

// TestJobPatchDraining confirms edits are refused once drain starts, and
// that method dispatch still advertises PATCH.
func TestJobPatchDraining(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitAndWait(t, ts, "late")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/late", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, PATCH" {
		t.Errorf("DELETE = %d Allow=%q, want 405 with \"GET, PATCH\"", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp.Body.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := patchJob(t, ts, "late", "", `{"edits":[{"op":"add_min","from":"a","to":"b","weight":2}]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("PATCH while draining = %d, want 503", resp.StatusCode)
		resp.Body.Close()
	} else {
		resp.Body.Close()
	}
	// GET still serves results during and after drain.
	if v := getJob(t, ts, "late"); v.Status != StatusDone {
		t.Errorf("GET after drain: status %q, want done", v.Status)
	}
}

// TestJobPatchSharedCacheIsolation pins the fork-on-first-patch rule:
// two jobs with identical sources share one engine cache entry, and
// patching one must not leak edits into the other.
func TestJobPatchSharedCacheIsolation(t *testing.T) {
	s := testServer(t, 1, func(o *Options) { _ = o })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitAndWait(t, ts, "left")
	right := submitAndWait(t, ts, "right")
	if !right.CacheHit {
		t.Fatal("identical second job was not a cache hit; isolation test needs a shared entry")
	}

	decodeView(t, patchJob(t, ts, "left", "",
		`{"edits":[{"op":"add_min","from":"a","to":"b","weight":7}]}`), http.StatusOK)

	after := getJob(t, ts, "right")
	if after.Offsets != right.Offsets || after.Patches != 0 {
		t.Error("patching job \"left\" mutated the cache-shared job \"right\"")
	}
	// And a third submission of the same source still gets clean offsets.
	third := submitAndWait(t, ts, "third")
	if third.Offsets != right.Offsets {
		t.Error("patched fork leaked into the engine cache entry")
	}
}
