// Staged intake pipeline: the serve layer runs each accepted job
// through goroutine stages connected by bounded channels —
//
//	submit (HTTP decode) → fpq → fingerprint stage → queue →
//	schedule workers → renderq → render workers → terminal state
//
// so the SHA-256 fingerprint of one job and the JSON/offset rendering
// of another overlap the engine's scheduling of a third, instead of
// every job running whole on one worker. Channel bounds: fpq and
// renderq share the admission queue's capacity, and admission reserves
// space against the *pipeline total* (Server.pipelined), so intra-
// pipeline sends never block and never deadlock; only renderq can
// apply backpressure to schedule workers, and render workers never
// wait on anything upstream.
//
// Drain's exactly-once guarantee now settles at the *render* stage:
// Drain closes fpq, the fingerprint stage forwards its backlog and
// closes queue, the schedule workers finish and exit, renderq closes,
// and the render workers publish the last terminal states before the
// event stream closes (see Server.Drain and docs/CONCURRENCY.md).
package serve

import (
	"strings"

	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/relsched"
)

// renderMsg hands one finished engine result from a schedule worker to
// the render stage.
type renderMsg struct {
	rec *jobRecord
	res engine.Result
}

// renderWorkerCount sizes the render stage from the schedule pool size:
// rendering is much lighter than scheduling, so half the pool, clamped
// to [1, 4], keeps up without stealing CPUs from the engine.
func renderWorkerCount(scheduleWorkers int) int {
	n := (scheduleWorkers + 1) / 2
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// fpStage is the fingerprint/admit stage: one goroutine that pre-hashes
// each admitted graph into the engine's generation-keyed fingerprint
// memo (a pooled SHA-256 pass, see engine.PrewarmFingerprint) before
// handing the record to the schedule workers. The worker's own
// fingerprint step then memo-hits in O(1), so hashing of job N overlaps
// scheduling of job N-1 instead of serializing behind it.
//
// The stage owns the queue channel's close: fpq closing (Drain) makes
// it forward the backlog and close queue, preserving the drain chain.
func (s *Server) fpStage() {
	defer s.fpWG.Done()
	defer close(s.queue)
	for rec := range s.fpq {
		s.eng.PrewarmFingerprint(rec.graph)
		// Cannot block: admission reserves pipeline capacity, so queue
		// always has room for every record in flight ahead of a worker.
		s.queue <- rec
	}
}

// renderWorker drains finished results until renderq closes (after the
// schedule workers exit during drain).
func (s *Server) renderWorker() {
	defer s.renderWG.Done()
	for msg := range s.renderq {
		s.finalizeJob(msg.rec, msg.res)
	}
}

// finalizeJob is the render stage's unit of work: pre-render the offset
// table, publish the terminal state, and fire the post-job bookkeeping
// (latency, limiter, SLO, events). Runs on a render worker, off the
// schedule workers' critical path.
func (s *Server) finalizeJob(rec *jobRecord, res engine.Result) {
	// Pre-render the default GET view (irredundant offsets) outside all
	// locks: the record is not yet terminal, so no PATCH can be mutating
	// its graph (PATCH requires StatusDone), and cache-shared schedules
	// are immutable by contract.
	var pre string
	if res.Err == nil && res.Schedule != nil {
		var b strings.Builder
		if err := cgio.WriteOffsets(&b, res.Schedule, relsched.IrredundantAnchors); err == nil {
			pre = b.String()
		}
	}

	s.storeMu.Lock()
	rec.result = res
	if res.Err != nil {
		rec.status = StatusFailed
		rec.errKind = errKind(res.Err)
	} else {
		rec.status = StatusDone
	}
	rec.preOffsets = pre
	s.finished = append(s.finished, rec.id)
	s.evictLocked()
	s.storeMu.Unlock()

	latency := s.now().Sub(rec.acceptedAt)
	if spanID := uint64(rec.reqSpan.ID()); spanID == 0 && rec.requestID == "" && res.FlightBundle == "" {
		s.jobLatency.Observe(latency)
	} else {
		// The exemplar's span is the request root — the top of the tree
		// the traceparent named — so a slow latency bucket resolves
		// straight to the whole request's trace and flight bundle.
		s.jobLatency.ObserveExemplar(latency, obs.Exemplar{
			SpanID:     uint64(rec.reqSpan.ID()),
			RequestID:  rec.requestID,
			FlightPath: res.FlightBundle,
		})
	}
	s.limiter.release(rec.tenant)
	if reason, fire := s.slo.observe(s.now(), latency, res.Err != nil); fire {
		// The slow part (registry snapshot, bundle write, profile start)
		// runs off the render worker; cooldown guarantees no pile-up.
		go s.fireSLOBurn(reason)
	}

	if res.Err != nil {
		ev := s.event(EventFailed, rec)
		ev.Reason = rec.errKind
		s.events.publish(ev)
		s.tenantJobs.With(rec.tenant, "failed").Inc()
	} else {
		s.events.publish(s.event(EventDone, rec))
		s.tenantJobs.With(rec.tenant, "done").Inc()
	}
	if res.FlightBundle != "" {
		ev := s.event(EventFlight, rec)
		ev.Flight = res.FlightBundle
		s.events.publish(ev)
	}
	if s.log.Enabled(logx.LevelDebug) {
		s.log.Debug("job finalized", logx.Str("job", rec.id), logx.Str("status", string(rec.status)))
	}
}
