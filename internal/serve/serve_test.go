package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/leakcheck"
)

// simpleCG is a well-posed four-vertex graph in the cgio text format,
// cheap to schedule; distinct graphs for cache tests append vertices.
const simpleCG = `graph t
vertex a delay=1
vertex b delay=2
vertex sink delay=0
seq v0 a
seq a b
seq b sink
min a b 1
`

// testServer builds an engine + Server pair for white-box tests. mutate
// tweaks the serve options (the Engine field is overwritten).
func testServer(t *testing.T, engWorkers int, mutate func(*Options)) *Server {
	t.Helper()
	// Registered before the drain cleanup below, so it verifies (LIFO)
	// after the drain: a Server must not leave worker, poll, or SSE
	// goroutines running once Drain returns.
	leakcheck.Check(t)
	opts := Options{Workers: engWorkers}
	if mutate != nil {
		mutate(&opts)
	}
	opts.Engine = engine.New(engine.Options{Workers: engWorkers})
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

// jobsResponse mirrors the 202 body of POST /v1/jobs.
type jobsResponse struct {
	Jobs []JobView `json:"jobs"`
}

// postJobs POSTs body to /v1/jobs and returns the response. The caller
// closes the body.
func postJobs(t *testing.T, ts *httptest.Server, tenant, contentType, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJobs(t *testing.T, resp *http.Response) []JobView {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d, want 202; body: %s", resp.StatusCode, b)
	}
	var jr jobsResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr.Jobs
}

func getStatusCode(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// singleJob renders one JobRequest body.
func singleJob(id string) string {
	b, _ := json.Marshal(JobRequest{ID: id, Source: simpleCG})
	return string(b)
}

// batchJobs renders a JSON array of n jobs with server-assigned IDs.
func batchJobs(n int) string {
	reqs := make([]JobRequest, n)
	for i := range reqs {
		reqs[i] = JobRequest{Source: simpleCG}
	}
	b, _ := json.Marshal(reqs)
	return string(b)
}

// waitFor polls cond until true or the deadline; fails the test on
// timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDrainExactlyOnce pins the package's core promise: N accepted jobs
// (202) resolve to exactly N terminal results across a drain that starts
// while they are queued and in-flight — none lost, none duplicated —
// and /readyz flips 503 the moment the drain begins.
func TestDrainExactlyOnce(t *testing.T) {
	const n = 6
	s := testServer(t, 2, func(o *Options) { o.QueueDepth = 16 })
	gate := make(chan struct{})
	s.testJobGate = gate // every job blocks at start until the gate opens
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if got := getStatusCode(t, ts, "/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}

	views := decodeJobs(t, postJobs(t, ts, "", "application/json", batchJobs(n)))
	if len(views) != n {
		t.Fatalf("accepted %d jobs, want %d", len(views), n)
	}
	ids := make(map[string]bool, n)
	for _, v := range views {
		if v.Status != StatusQueued {
			t.Errorf("job %s accepted with status %q, want queued", v.ID, v.Status)
		}
		if ids[v.ID] {
			t.Fatalf("duplicate job ID %q in accept response", v.ID)
		}
		ids[v.ID] = true
	}

	// Both workers have claimed a job and sit blocked at the gate; the
	// other four wait in the queue. Start the drain mid-flight.
	waitFor(t, "workers to claim jobs", func() bool { d, _ := s.QueueDepth(); return d == n-2 })
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", func() bool { return !s.Ready() })

	if got := getStatusCode(t, ts, "/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", got)
	}
	if resp := postJobs(t, ts, "", "application/json", batchJobs(1)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST during drain = %d, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	select {
	case err := <-drainErr:
		t.Fatalf("drain completed with jobs still gated (err=%v)", err)
	default:
	}

	close(gate) // release every in-flight and queued job
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-s.Drained():
	default:
		t.Error("Drained() not closed after Drain returned")
	}

	// Exactly one terminal result per accepted ID.
	st := s.Status()
	if st.JobsDone != n || st.JobsFailed != 0 || st.JobsQueued != 0 || st.JobsRunning != 0 {
		t.Fatalf("post-drain status = %+v, want %d done and nothing else", st, n)
	}
	for id := range ids {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || v.Status != StatusDone {
			t.Errorf("job %s after drain: HTTP %d status %q, want 200 done", id, resp.StatusCode, v.Status)
		}
	}
	reg := s.eng.Metrics()
	if acc := reg.Counter(MetricJobsAccepted).Value(); acc != n {
		t.Errorf("%s = %d, want %d", MetricJobsAccepted, acc, n)
	}
	if shed := reg.Counter(engine.MetricJobsShed).Value(); shed != 0 {
		t.Errorf("%s = %d, want 0 (503s are not sheds)", engine.MetricJobsShed, shed)
	}

	// Drain is idempotent: a second call observes the same completion.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestLoadShedQueueFull pins the 429 backpressure path and the shed
// counter conservation laws:
//
//	requested = accepted + shed
//	shed      = queue_full + rate_limited + quota
func TestLoadShedQueueFull(t *testing.T) {
	s := testServer(t, 1, func(o *Options) { o.QueueDepth = 2 })
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 is claimed by the lone worker and blocks at the gate.
	decodeJobs(t, postJobs(t, ts, "", "application/json", batchJobs(1)))
	waitFor(t, "worker to claim the job", func() bool { d, _ := s.QueueDepth(); return d == 0 })

	// A 3-job batch cannot fit the 2-slot queue: shed atomically.
	resp := postJobs(t, ts, "", "application/json", batchJobs(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow batch = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if eb.Reason != "queue_full" {
		t.Errorf("shed reason = %q, want queue_full", eb.Reason)
	}

	// Two jobs fill the queue exactly; one more sheds.
	decodeJobs(t, postJobs(t, ts, "", "application/json", batchJobs(2)))
	resp = postJobs(t, ts, "", "application/json", batchJobs(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST to a full queue = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	reg := s.eng.Metrics()
	requested := reg.Counter(MetricJobsRequested).Value()
	accepted := reg.Counter(MetricJobsAccepted).Value()
	shed := reg.Counter(engine.MetricJobsShed).Value()
	queueFull := reg.Counter(MetricShedQueueFull).Value()
	rate := reg.Counter(MetricShedRateLimited).Value()
	quota := reg.Counter(MetricShedQuota).Value()
	if requested != accepted+shed {
		t.Errorf("conservation broken: requested=%d accepted=%d shed=%d", requested, accepted, shed)
	}
	if shed != queueFull+rate+quota {
		t.Errorf("shed reasons don't sum: shed=%d queue_full=%d rate=%d quota=%d", shed, queueFull, rate, quota)
	}
	if accepted != 3 || shed != 4 || queueFull != 4 {
		t.Errorf("accepted=%d shed=%d queue_full=%d, want 3/4/4", accepted, shed, queueFull)
	}

	// Every accepted job still resolves: backpressure loses requests,
	// never accepted work.
	close(gate)
	waitFor(t, "accepted jobs to finish", func() bool { return s.Status().JobsDone == 3 })
}

// TestTenantRateAndQuotaSheds drives the tenant gates through HTTP with
// a fake clock: rate refusals and quota refusals produce 429s with the
// machine-readable reason and land in their own shed counters.
func TestTenantRateAndQuotaSheds(t *testing.T) {
	// The clock is read by handler goroutines and advanced by the test:
	// guard it.
	var clockMu sync.Mutex
	clock := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	s := testServer(t, 1, func(o *Options) {
		o.RatePerTenant = 1
		o.Burst = 2
		o.TenantQuota = 3
		o.QueueDepth = 16
		o.Now = func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return clock
		}
	})
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Burst of 2 admits; the third job in the same instant is rate-shed.
	decodeJobs(t, postJobs(t, ts, "alice", "application/json", batchJobs(2)))
	resp := postJobs(t, ts, "alice", "application/json", batchJobs(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst POST = %d, want 429", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if eb.Reason != "rate" {
		t.Errorf("reason = %q, want rate", eb.Reason)
	}

	// Tenants are independent: bob's bucket is untouched by alice's.
	decodeJobs(t, postJobs(t, ts, "bob", "application/json", batchJobs(1)))

	// One refilled token admits one more alice job; her fourth active job
	// then trips the quota (3 queued+running), not the rate.
	advance(2 * time.Second)
	decodeJobs(t, postJobs(t, ts, "alice", "application/json", batchJobs(1)))
	advance(2 * time.Second)
	resp = postJobs(t, ts, "alice", "application/json", batchJobs(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota POST = %d, want 429", resp.StatusCode)
	}
	eb = errorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if eb.Reason != "quota" {
		t.Errorf("reason = %q, want quota", eb.Reason)
	}

	reg := s.eng.Metrics()
	if r := reg.Counter(MetricShedRateLimited).Value(); r != 1 {
		t.Errorf("rate sheds = %d, want 1", r)
	}
	if q := reg.Counter(MetricShedQuota).Value(); q != 1 {
		t.Errorf("quota sheds = %d, want 1", q)
	}
	requested := reg.Counter(MetricJobsRequested).Value()
	accepted := reg.Counter(MetricJobsAccepted).Value()
	shed := reg.Counter(engine.MetricJobsShed).Value()
	if requested != accepted+shed {
		t.Errorf("conservation broken: requested=%d accepted=%d shed=%d", requested, accepted, shed)
	}

	close(gate)
	waitFor(t, "jobs to finish", func() bool { return s.Status().JobsDone == 4 })
}

// TestJSONLIntake submits a batch as JSONL with blank and comment lines,
// the same conventions as `relsched batch -manifest`.
func TestJSONLIntake(t *testing.T) {
	s := testServer(t, 2, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src, _ := json.Marshal(simpleCG)
	body := fmt.Sprintf("# a comment\n\n{\"id\":\"l1\",\"source\":%s}\n{\"id\":\"l2\",\"source\":%s}\n", src, src)
	views := decodeJobs(t, postJobs(t, ts, "", "application/x-ndjson", body))
	if len(views) != 2 || views[0].ID != "l1" || views[1].ID != "l2" {
		t.Fatalf("JSONL batch = %+v, want jobs l1, l2", views)
	}
	waitFor(t, "JSONL jobs to finish", func() bool { return s.Status().JobsDone == 2 })
}

// TestJobLifecycle follows one job from 202 to a scheduled offset table
// and exercises the GET mode selector.
func TestJobLifecycle(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	views := decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob("gcd")))
	if len(views) != 1 || views[0].ID != "gcd" {
		t.Fatalf("accept = %+v, want one job gcd", views)
	}

	var v JobView
	waitFor(t, "job gcd to finish", func() bool {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/gcd")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/gcd = %d", resp.StatusCode)
		}
		v = JobView{}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.Status == StatusDone
	})
	if v.Offsets == "" || v.Anchors == 0 || v.Iterations == 0 {
		t.Errorf("terminal view missing schedule data: %+v", v)
	}

	for _, mode := range []string{"full", "relevant", "irredundant"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/gcd?mode=" + mode)
		if err != nil {
			t.Fatal(err)
		}
		var mv JobView
		if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mv.Offsets == "" {
			t.Errorf("mode %s: empty offset table", mode)
		}
	}
	if got := getStatusCode(t, ts, "/v1/jobs/gcd?mode=bogus"); got != http.StatusBadRequest {
		t.Errorf("bogus mode = %d, want 400", got)
	}
	if got := getStatusCode(t, ts, "/v1/jobs/never-submitted"); got != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", got)
	}
}

// TestIntakeRefusals covers the client-error statuses: malformed JSON,
// missing/unparseable source, duplicate ID, oversized body, wrong
// method. None of them count as sheds.
func TestIntakeRefusals(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp := postJobs(t, ts, "", "application/json", body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{not json`); got != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", got)
	}
	if got := post(`{"id":"x"}`); got != http.StatusBadRequest {
		t.Errorf("missing source = %d, want 400", got)
	}
	if got := post(`{"source":"graph g\nedge oops"}`); got != http.StatusBadRequest {
		t.Errorf("unparseable source = %d, want 400", got)
	}
	if got := post(`[]`); got != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", got)
	}
	if got := post(singleJob("dup")); got != http.StatusAccepted {
		t.Fatalf("first dup = %d, want 202", got)
	}
	if got := post(singleJob("dup")); got != http.StatusConflict {
		t.Errorf("second dup = %d, want 409", got)
	}
	big := strings.Repeat("x", maxRequestBody+1)
	if got := post(big); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
	if shed := s.eng.Metrics().Counter(engine.MetricJobsShed).Value(); shed != 0 {
		t.Errorf("client errors counted as sheds: %d", shed)
	}
}

// TestAdminConfigReload hot-swaps workers, cache capacity, and tenant
// policy through POST /v1/admin/config and reads the result back.
func TestAdminConfigReload(t *testing.T) {
	s := testServer(t, 2, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postConfig := func(body string) (*http.Response, StatusView) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/admin/config", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sv StatusView
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, sv
	}

	resp, sv := postConfig(`{"workers": 5, "cache_capacity": 7, "rate_per_tenant": 2.5, "burst": 4, "tenant_quota": 9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config POST = %d, want 200", resp.StatusCode)
	}
	if sv.Workers != 5 || sv.CacheCapacity != 7 || sv.RatePerTenant != 2.5 || sv.Burst != 4 || sv.TenantQuota != 9 {
		t.Errorf("reloaded status = %+v, want workers=5 cache=7 rate=2.5 burst=4 quota=9", sv)
	}
	if s.Workers() != 5 {
		t.Errorf("Workers() = %d after reload, want 5", s.Workers())
	}

	// Shrink back down; the pool settles without abandoning anything.
	if _, sv = postConfig(`{"workers": 1}`); sv.Workers != 1 {
		t.Errorf("shrink: workers = %d, want 1", sv.Workers)
	}
	waitFor(t, "pool to shrink", func() bool { return s.Workers() == 1 })

	if resp, _ = postConfig(`{"workers": 0}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("workers=0 = %d, want 400", resp.StatusCode)
	}
	if resp, _ = postConfig(`{"wrokers": 2}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", resp.StatusCode)
	}

	// GET returns the same snapshot shape.
	resp, err := ts.Client().Get(ts.URL + "/v1/admin/config")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET config = %d, want 200", resp.StatusCode)
	}

	// Config freezes once drain starts.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ = postConfig(`{"workers": 3}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("config during drain = %d, want 503", resp.StatusCode)
	}
}

// TestResultEviction pins the bounded result store: oldest finished
// results give way, queued and running jobs are never evicted.
func TestResultEviction(t *testing.T) {
	s := testServer(t, 1, func(o *Options) { o.ResultCapacity = 2; o.QueueDepth = 16 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("e%d", i)
		decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob(id)))
		waitFor(t, id+" to finish", func() bool {
			rec, ok := s.job(id)
			if !ok {
				t.Fatalf("job %s vanished before finishing", id)
			}
			s.storeMu.Lock()
			st := rec.status
			s.storeMu.Unlock()
			return st == StatusDone
		})
	}
	if got := getStatusCode(t, ts, "/v1/jobs/e0"); got != http.StatusNotFound {
		t.Errorf("evicted job e0 = %d, want 404", got)
	}
	if got := getStatusCode(t, ts, "/v1/jobs/e3"); got != http.StatusOK {
		t.Errorf("retained job e3 = %d, want 200", got)
	}
}

// TestServerAssignedIDsSkipTaken: a client-claimed "j-1" must not
// collide with the server's own sequence.
func TestServerAssignedIDsSkipTaken(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob("j-1")))
	views := decodeJobs(t, postJobs(t, ts, "", "application/json", batchJobs(1)))
	if views[0].ID == "j-1" || views[0].ID == "" {
		t.Errorf("server-assigned ID %q collides with the client's", views[0].ID)
	}
	waitFor(t, "both jobs to finish", func() bool { return s.Status().JobsDone == 2 })
}

// TestDrainDeadline: a drain whose context expires while a job is still
// in flight reports ctx.Err() — the CLI's cue to exit nonzero — and the
// job still completes afterwards (accepted work is never abandoned).
func TestDrainDeadline(t *testing.T) {
	s := testServer(t, 1, nil)
	gate := make(chan struct{})
	s.testJobGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	decodeJobs(t, postJobs(t, ts, "", "application/json", batchJobs(1)))
	waitFor(t, "worker to claim the job", func() bool { d, _ := s.QueueDepth(); return d == 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain with a gated job = %v, want context.DeadlineExceeded", err)
	}

	// The expired deadline abandoned the wait, not the work.
	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if st := s.Status(); st.JobsDone != 1 {
		t.Errorf("post-drain status = %+v, want 1 done", st)
	}
}
