// Package serve turns the batch scheduling engine into a long-running
// network service: `relsched serve` — HTTP/JSON job intake in front of
// internal/engine, with the admission discipline a daemon needs and the
// batch CLI never did. The pieces, front to back:
//
//   - Intake: POST /v1/jobs accepts one job (inline .cg source) or a
//     JSONL batch; GET /v1/jobs/{id} returns status and, once scheduled,
//     the offset table and stats. Results are held in a bounded store.
//     Accepted jobs flow through a staged pipeline — decode →
//     fingerprint → schedule → render — with bounded channels between
//     stages, so hashing and rendering overlap the engine's scheduling
//     work (see pipeline.go).
//   - Admission: a bounded queue between intake and the workers. When it
//     is full the request is shed with 429 + Retry-After instead of
//     queuing unboundedly — backpressure is the contract, not latency
//     collapse. Sheds are counted (engine.jobs.shed) and reported to the
//     flight recorder, which dumps a diagnostic bundle on shed storms.
//   - Tenancy: per-tenant token-bucket rate limits and concurrency
//     quotas keyed by the X-Tenant header (see tenant.go).
//   - Drain: Server.Drain — wired to SIGTERM/SIGINT by the CLI — flips
//     /readyz to 503, refuses new jobs with 503, lets every admitted job
//     finish, and only then releases the process. Exactly one terminal
//     result per accepted job, none lost, none duplicated (pinned by
//     TestDrainExactlyOnce).
//   - Hot reload: POST /v1/admin/config resizes the worker pool, the
//     engine's memo cache, and the tenant policy without a restart.
//
// The observability surface from docs/OBSERVABILITY.md (/metrics,
// /healthz, /readyz, /debug/trace) rides on the same mux via MountDebug,
// so one listener serves both the job API and its own diagnosis.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cg"
	"repro/internal/cgio"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/logx"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/relsched"
	"repro/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Engine executes the jobs; required. The server records its
	// admission metrics into Engine.Metrics(), so one /metrics scrape
	// covers intake and execution.
	Engine *engine.Engine
	// Workers is the initial number of serving workers pulling from the
	// admission queue (each runs one engine.Schedule at a time). <= 0
	// selects Engine.Workers(). Hot-reloadable via /v1/admin/config.
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with
	// 429. <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// ResultCapacity bounds the finished-result store (oldest finished
	// results are evicted first; queued and running jobs are never
	// evicted). <= 0 selects DefaultResultCapacity.
	ResultCapacity int
	// RatePerTenant is the sustained per-tenant admission rate in jobs
	// per second (token bucket, see tenant.go); 0 disables rate
	// limiting. Burst is the bucket size (default max(1, ceil(rate))).
	RatePerTenant float64
	Burst         int
	// TenantQuota bounds one tenant's jobs queued or running at once;
	// 0 disables.
	TenantQuota int
	// Tracer, Logger, Flight are the optional observability hooks,
	// shared with the engine (all nil-safe).
	Tracer *trace.Tracer
	Logger *logx.Logger
	Flight *flight.Recorder
	// SLO enables the rolling-window burn-rate tracker (see slo.go):
	// serve.slo.* metrics, GET /v1/slo, and a flight bundle + profile
	// capture pair on budget burn. Nil disables tracking.
	SLO *SLOConfig
	// Prof is the self-profiling plane (shared with the engine): the
	// server uses it for SLO-burn captures and the POST
	// /v1/admin/profile trigger. Nil disables both.
	Prof *prof.Profiler
	// Runtime, when set, is polled every RuntimeInterval (default 5s)
	// for Go runtime telemetry (GC pauses, heap, goroutines, scheduler
	// latency) published on the shared registry and summarized on
	// /v1/status. The poll loop stops when the server drains. Nil keeps
	// the disabled path free of any runtime/metrics reads.
	Runtime         *obs.RuntimeSampler
	RuntimeInterval time.Duration
	// Now is a clock override for tests; nil selects time.Now.
	Now func() time.Time
}

// Defaults for Options.
const (
	DefaultQueueDepth     = 256
	DefaultResultCapacity = 4096
)

// Serve-layer metric names (registered on the engine's registry; the
// shed counter itself is engine.MetricJobsShed). Documented in
// docs/SERVICE.md and docs/OBSERVABILITY.md.
const (
	// MetricJobsAccepted counts jobs admitted past every gate (each will
	// produce exactly one terminal result). Conservation:
	// requested = accepted + shed, and
	// shed = shed_queue_full + shed_rate_limited + shed_quota.
	MetricJobsAccepted = "serve.jobs.accepted"
	// MetricJobsRequested counts jobs asked for via POST /v1/jobs that
	// passed validation (parseable source), before admission. Jobs
	// refused because the server is draining are not counted, so the
	// conservation law above holds exactly at every instant.
	MetricJobsRequested = "serve.jobs.requested"
	// Shed reasons, summing to engine.jobs.shed.
	MetricShedQueueFull   = "serve.shed.queue_full"
	MetricShedRateLimited = "serve.shed.rate_limited"
	MetricShedQuota       = "serve.shed.quota"
	// MetricQueueDepth gauges jobs admitted but not yet claimed by a
	// schedule worker: the population of the staged intake pipeline
	// ahead of the workers (fingerprint stage plus admission queue).
	MetricQueueDepth = "serve.queue.depth"
	// MetricWorkers gauges the current worker-pool size.
	MetricWorkers = "serve.workers"
	// MetricHTTPRequests counts API requests, labeled
	// {route,method,code}: the R and E of RED per endpoint. The route
	// label is normalized onto a fixed table (see routeLabel) and the
	// family's cardinality is capped (see internal/obs/labels.go), so a
	// path-spraying client cannot mint series.
	MetricHTTPRequests = "serve.http.requests"
	// MetricTenantJobs counts per-tenant job outcomes, labeled
	// {tenant,outcome} with outcome one of accepted, shed, done, failed.
	// Tenant names are client-chosen, so this family leans on the label
	// cap: past the budget new tenants collapse into "other" and the
	// totals stay honest. Conservation per tenant:
	// accepted = done + failed (once drained), and accepted + shed =
	// jobs requested past the drain gate.
	MetricTenantJobs = "serve.tenant.jobs"
	// MetricEventsDropped counts /v1/events deliveries abandoned because
	// a subscriber's buffer was full (the subscriber is disconnected; see
	// events.go).
	MetricEventsDropped = "serve.events.dropped"
	// MetricSpansDropped gauges trace.Tracer.Dropped(): completed spans
	// overwritten by ring wrap-around. A rising value means /debug/trace
	// and flight bundles are missing history — raise the ring capacity.
	MetricSpansDropped = "trace.spans.dropped"
	// MetricJobsPatched counts graph edits applied through
	// PATCH /v1/jobs/{id} (one per edit, not per request). The engine's
	// engine.delta.applied/failed counters split the same traffic by
	// scheduling outcome.
	MetricJobsPatched = "serve.jobs.patched"
	// MetricJobLatency is the end-to-end latency histogram of accepted
	// jobs: admission (202) to terminal state, queue wait included —
	// what a client experiences under load, as opposed to
	// engine.job.duration, which starts when a worker picks the job up.
	MetricJobLatency = "serve.job.latency"
)

// JobStatus is the lifecycle of one accepted job.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// JobRequest is one submitted job: the POST /v1/jobs body (single
// object) or one line of a JSONL batch.
type JobRequest struct {
	// ID is the caller's handle for GET /v1/jobs/{id}; server-assigned
	// ("j-<n>") when empty. Submitting an ID that is still known
	// (queued, running, or retained) is a 409 conflict.
	ID string `json:"id,omitempty"`
	// Source is the constraint graph in the cgio text format. Required.
	Source string `json:"source"`
	// WellPose repairs an ill-posed graph (Theorem 7 minimal
	// serialization) instead of failing it.
	WellPose bool `json:"wellpose,omitempty"`
	// TimeoutMS overrides the engine's per-job timeout when positive.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Design names the workload family the graph belongs to (a paper
	// design name, a corpus label). It is a profile-attribution label
	// only — CPU profile samples carry it when the self-profiling plane
	// is on — never an identifier. Optional.
	Design string `json:"design,omitempty"`
}

// JobView is the GET /v1/jobs/{id} response (and the per-job element of
// a batch POST response).
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Tenant string    `json:"tenant,omitempty"`
	// RequestID and TraceParent echo the submitting request's
	// correlation identity (the X-Request-ID and W3C traceparent the
	// server answered the POST with), so a stored job resolves back to
	// its request trace.
	RequestID   string `json:"request_id,omitempty"`
	TraceParent string `json:"traceparent,omitempty"`
	// Terminal-state fields.
	CacheHit           bool  `json:"cache_hit,omitempty"`
	DurationNS         int64 `json:"duration_ns,omitempty"`
	Anchors            int   `json:"anchors,omitempty"`
	Iterations         int   `json:"iterations,omitempty"`
	SerializationEdges int   `json:"serialization_edges,omitempty"`
	// Patches counts the graph edits applied via PATCH /v1/jobs/{id};
	// the offset table below always reflects the patched schedule.
	Patches   int    `json:"patches,omitempty"`
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Offsets is the schedule's offset table in the CLI text format
	// (GET only; mode selected by ?mode=full|relevant|irredundant,
	// default irredundant).
	Offsets string `json:"offsets,omitempty"`
}

// jobRecord is the server-side state of one accepted job: the parsed
// inputs until a worker claims it, the engine result after.
type jobRecord struct {
	id         string
	tenant     string
	design     string
	graph      *cg.Graph
	wellPose   bool
	timeout    time.Duration
	acceptedAt time.Time
	status     JobStatus
	result     engine.Result // valid once status is terminal
	errKind    string

	// Request-scoped correlation identity, set at admission from the
	// submitting request's middleware metadata: the X-Request-ID and the
	// response traceparent echoed in JobView, and the request root span
	// the engine's job span is parented under. reqSpan is ended long
	// before the job runs; only its immutable ID/Root are ever read.
	requestID   string
	traceParent string
	reqSpan     *trace.Span

	// renderMu serializes PATCH delta application against offset
	// rendering: Schedule.Apply mutates the record's (private, forked)
	// graph in place, and WriteOffsets walks that graph. Lock order is
	// renderMu before storeMu, never the reverse — view and the patch
	// handler take renderMu first and storeMu briefly inside.
	renderMu sync.Mutex
	// patches counts the graph edits applied via PATCH /v1/jobs/{id}.
	// Zero means the record still shares the engine's immutable cache
	// entry; the first patch forks it (see handleJobPatch).
	patches int
	// preOffsets is the irredundant offset table pre-rendered by the
	// render stage (see finalizeJob); the default GET view serves it
	// without re-walking the schedule. Guarded by storeMu; a PATCH
	// clears it because the table no longer matches the edited graph.
	preOffsets string
}

// Server is the scheduling daemon. Create with New, mount via Handler,
// stop with Drain. Safe for concurrent use.
type Server struct {
	eng     *engine.Engine
	limiter *tenantLimiter
	log     *logx.Logger
	tracer  *trace.Tracer
	flight  *flight.Recorder
	prof    *prof.Profiler
	slo     *sloTracker         // nil when SLO tracking is off
	runtime *obs.RuntimeSampler // nil when runtime telemetry is off
	now     func() time.Time

	// metrics resolved once (see the Metric* names).
	requested, accepted  *obs.Counter
	shed, shedQueue      *obs.Counter
	shedRate, shedQuota  *obs.Counter
	patched              *obs.Counter
	eventsDropped        *obs.Counter
	httpReqVec           *obs.CounterVec
	tenantJobs           *obs.CounterVec
	jobLatency           *obs.Histogram
	queueDepth, workersG *obs.Gauge
	spansDropped         *obs.Gauge
	queueCap, resultCap  int

	// events fans the job lifecycle out to /v1/events subscribers.
	events *eventHub

	// Staged intake pipeline (see pipeline.go): submit sends to fpq, the
	// fingerprint stage forwards to queue, schedule workers send results
	// to renderq, render workers publish terminal state. intakeMu is
	// held shared by enqueuers and exclusively by Drain: a send can
	// never race the close. pipelined counts jobs admitted but not yet
	// claimed by a schedule worker (it spans fpq, the fingerprint stage,
	// and queue) and is what admission reserves capacity against.
	intakeMu  sync.RWMutex
	draining  atomic.Bool
	fpq       chan *jobRecord
	queue     chan *jobRecord
	renderq   chan renderMsg
	pipelined atomic.Int64

	// Worker pool: resizable (quit tokens shrink it), wg tracks schedule
	// workers for drain; fpWG and renderWG track the fixed fingerprint
	// and render stages.
	poolMu   sync.Mutex
	workers  int
	quit     chan struct{}
	wg       sync.WaitGroup
	fpWG     sync.WaitGroup
	renderWG sync.WaitGroup

	// Job store: every accepted job from admission to (bounded)
	// retention after completion.
	storeMu  sync.Mutex
	store    map[string]*jobRecord
	finished []string // terminal job IDs, oldest first, for eviction
	seq      uint64   // server-assigned job IDs

	// testJobGate, when non-nil, blocks each worker at job start until
	// the gate channel yields; white-box tests use it to hold jobs
	// in-flight deterministically.
	testJobGate chan struct{}

	drainOnce sync.Once
	drained   chan struct{} // closed when the last worker exits
}

// New creates a Server and starts its worker pool. The server is
// immediately ready to accept jobs (mount Handler on a listener, e.g.
// via StartHTTP).
func New(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, fmt.Errorf("serve: Options.Engine is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = opts.Engine.Workers()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.ResultCapacity <= 0 {
		opts.ResultCapacity = DefaultResultCapacity
	}
	if opts.Burst <= 0 && opts.RatePerTenant > 0 {
		opts.Burst = int(opts.RatePerTenant + 0.999)
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	reg := opts.Engine.Metrics()
	s := &Server{
		eng:           opts.Engine,
		limiter:       newTenantLimiter(opts.RatePerTenant, opts.Burst, opts.TenantQuota, now),
		log:           opts.Logger,
		tracer:        opts.Tracer,
		flight:        opts.Flight,
		prof:          opts.Prof,
		runtime:       opts.Runtime,
		now:           now,
		requested:     reg.Counter(MetricJobsRequested),
		accepted:      reg.Counter(MetricJobsAccepted),
		shed:          reg.Counter(engine.MetricJobsShed),
		shedQueue:     reg.Counter(MetricShedQueueFull),
		shedRate:      reg.Counter(MetricShedRateLimited),
		shedQuota:     reg.Counter(MetricShedQuota),
		patched:       reg.Counter(MetricJobsPatched),
		eventsDropped: reg.Counter(MetricEventsDropped),
		httpReqVec:    reg.CounterVec(MetricHTTPRequests, "route", "method", "code"),
		tenantJobs:    reg.CounterVec(MetricTenantJobs, "tenant", "outcome"),
		jobLatency:    reg.Histogram(MetricJobLatency),
		queueDepth:    reg.Gauge(MetricQueueDepth),
		workersG:      reg.Gauge(MetricWorkers),
		spansDropped:  reg.Gauge(MetricSpansDropped),
		queueCap:      opts.QueueDepth,
		resultCap:     opts.ResultCapacity,
		fpq:           make(chan *jobRecord, opts.QueueDepth),
		queue:         make(chan *jobRecord, opts.QueueDepth),
		renderq:       make(chan renderMsg, opts.QueueDepth),
		quit:          make(chan struct{}),
		store:         make(map[string]*jobRecord),
		drained:       make(chan struct{}),
	}
	if opts.SLO != nil {
		s.slo = newSLOTracker(*opts.SLO, reg)
	}
	s.events = newEventHub(func(n uint64) { s.eventsDropped.Add(n) })
	s.fpWG.Add(1)
	go s.fpStage()
	for i := 0; i < renderWorkerCount(opts.Workers); i++ {
		s.renderWG.Add(1)
		go s.renderWorker()
	}
	s.resizePool(opts.Workers)
	if s.runtime != nil {
		interval := opts.RuntimeInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		s.runtime.Sample()
		go s.pollRuntime(interval)
	}
	return s, nil
}

// pollRuntime republishes the Go runtime telemetry until drain
// completes. One loop per server; RuntimeSampler is single-consumer.
func (s *Server) pollRuntime(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.drained:
			return
		case <-tick.C:
			s.runtime.Sample()
		}
	}
}

// Ready reports whether the server accepts new jobs (false once Drain
// starts); it is the /readyz predicate.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Workers returns the current worker-pool size.
func (s *Server) Workers() int {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return s.workers
}

// QueueDepth returns the number of admitted jobs not yet claimed by a
// schedule worker (in the fingerprint stage or the admission queue),
// and the pipeline's capacity.
func (s *Server) QueueDepth() (depth, capacity int) {
	return int(s.pipelined.Load()), s.queueCap
}

// resizePool grows or shrinks the worker pool to n (n >= 1). Shrinking
// hands out quit tokens; a worker mid-job finishes that job first, so a
// resize never abandons work. Caller must not hold poolMu.
func (s *Server) resizePool(n int) {
	if n < 1 {
		n = 1
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	for s.workers < n {
		s.workers++
		s.wg.Add(1)
		go s.worker()
	}
	for s.workers > n {
		s.workers--
		s.quit <- struct{}{}
	}
	s.workersG.Set(int64(s.workers))
}

// worker pulls admitted jobs until the queue closes (drain) or it
// receives a quit token (pool shrink).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// A pending quit token wins over more work, so shrinks settle
		// even while the queue is hot.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case rec, ok := <-s.queue:
			if !ok {
				return
			}
			s.pipelined.Add(-1)
			s.queueDepth.Add(-1)
			s.runJob(rec)
		}
	}
}

// runJob executes one admitted job on a schedule worker and hands the
// result to the render stage, which publishes the terminal state
// (finalizeJob in pipeline.go). Jobs run with context.Background()
// deliberately: an accepted job is a promise, and the per-job timeout
// (engine Options or JobRequest.TimeoutMS) bounds how long the promise
// can take.
func (s *Server) runJob(rec *jobRecord) {
	if s.testJobGate != nil {
		<-s.testJobGate
	}
	s.storeMu.Lock()
	rec.status = StatusRunning
	s.storeMu.Unlock()
	s.events.publish(s.event(EventStarted, rec))

	// Parent/RequestID hand the request's correlation identity to the
	// engine: the job span becomes a child of the (already ended) request
	// span, and stage exemplars carry the request ID.
	res := s.eng.Schedule(context.Background(), engine.Job{
		ID:        rec.id,
		Graph:     rec.graph,
		WellPose:  rec.wellPose,
		Timeout:   rec.timeout,
		Parent:    rec.reqSpan,
		RequestID: rec.requestID,
		Tenant:    rec.tenant,
		Design:    rec.design,
	})

	// Hand off to the render stage: terminal-state publication, offset
	// pre-rendering, and post-job bookkeeping run there, so this worker
	// is free to claim the next job. The send can block only on render
	// backpressure, never on anything upstream, so there is no cycle.
	s.renderq <- renderMsg{rec: rec, res: res}
}

// fireSLOBurn is the burn-rate trigger action: capture CPU+heap
// profiles, dump a flight bundle cross-linking them, record the pair on
// /v1/slo, and announce it on the event stream. Each artifact is
// independently rate-limited and optional — a burn with the flight
// recorder off still captures profiles, and vice versa.
func (s *Server) fireSLOBurn(reason string) {
	var profiles map[string]string
	if pc, ok := s.prof.Capture("slo_burn"); ok {
		profiles = pc.Paths()
	}
	_, bundle := s.flight.ObserveSLOBurn(reason, profiles)
	s.slo.setLastBurn(SLOBurn{
		TimeUTC:  s.now().UTC().Format(time.RFC3339Nano),
		Reason:   reason,
		Flight:   bundle,
		Profiles: profiles,
	})
	ev := s.event(EventSLOBurn, nil)
	ev.Reason = reason
	ev.Flight = bundle
	s.events.publish(ev)
	if s.log.Enabled(logx.LevelWarn) {
		s.log.Warn("slo burn", logx.Str("reason", reason), logx.Str("flight", bundle))
	}
}

// evictLocked drops the oldest finished results over the retention
// bound. Caller holds storeMu.
func (s *Server) evictLocked() {
	for len(s.finished) > s.resultCap {
		id := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.store, id)
	}
}

// parsedJob is one validated intake job, ready for admission.
type parsedJob struct {
	id       string
	design   string
	graph    *cg.Graph
	wellPose bool
	timeout  time.Duration
}

// apiError is an admission or lookup refusal, rendered as a JSON error
// body with the HTTP status (and Retry-After header when set).
type apiError struct {
	status     int
	msg        string
	reason     string // shed reason for 429s: queue_full, rate, quota
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// submit admits a batch of validated jobs atomically: either every job
// is accepted (one jobRecord each, queued in request order) or none is
// and the refusal names why. Gates in order: drain (503), tenant rate
// limit and quota (429), queue capacity (429). A refused batch consumes
// no tokens and no quota. meta is the submitting request's correlation
// identity (never nil; the zero meta means no middleware ran).
func (s *Server) submit(tenant string, jobs []parsedJob, meta *reqMeta) ([]*jobRecord, *apiError) {
	n := len(jobs)

	// Shared intake lock: Drain takes it exclusively after flipping the
	// draining flag, so a submit that saw draining==false still enqueues
	// before the queue closes — a send can never race the close.
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	if s.draining.Load() {
		return nil, &apiError{status: 503, msg: "server is draining; not accepting jobs"}
	}
	// Counted after the drain gate so requested = accepted + shed holds
	// exactly: a drain refusal is lifecycle, not admission control.
	s.requested.Add(uint64(n))

	if v := s.limiter.admit(tenant, n); !v.ok {
		s.shed.Add(uint64(n))
		reason := "tenant rate limit"
		if v.reason == "quota" {
			s.shedQuota.Add(uint64(n))
			reason = "tenant quota"
		} else {
			s.shedRate.Add(uint64(n))
		}
		detail := fmt.Sprintf("%s exceeded for tenant %q (%d job(s))", reason, tenant, n)
		s.flight.ObserveShed(detail)
		s.publishShed(tenant, v.reason, n, meta)
		if s.log.Enabled(logx.LevelWarn) {
			s.log.Warn("jobs shed", logx.Str("reason", v.reason),
				logx.Str("tenant", tenant), logx.Int("jobs", int64(n)))
		}
		return nil, &apiError{status: 429, msg: detail, reason: v.reason, retryAfter: v.retryAfter}
	}

	s.storeMu.Lock()
	for _, j := range jobs {
		if j.id == "" {
			continue
		}
		if _, exists := s.store[j.id]; exists {
			s.storeMu.Unlock()
			s.releaseN(tenant, n)
			return nil, &apiError{status: 409, msg: fmt.Sprintf("job id %q already exists", j.id)}
		}
	}
	// Capacity check under storeMu: every enqueuer serializes here and
	// workers only ever shrink the pipeline, so the reservation holds
	// and the sends below cannot block — pipelined never exceeds
	// queueCap, which also bounds every inter-stage channel, so the
	// fingerprint stage's forward into queue cannot block either.
	depth := int(s.pipelined.Load())
	if depth+n > s.queueCap {
		s.storeMu.Unlock()
		s.releaseN(tenant, n)
		s.shed.Add(uint64(n))
		s.shedQueue.Add(uint64(n))
		detail := fmt.Sprintf("admission queue full (%d/%d), refusing %d job(s)", depth, s.queueCap, n)
		s.flight.ObserveShed(detail)
		s.publishShed(tenant, "queue_full", n, meta)
		if s.log.Enabled(logx.LevelWarn) {
			s.log.Warn("jobs shed", logx.Str("reason", "queue_full"),
				logx.Str("tenant", tenant), logx.Int("jobs", int64(n)))
		}
		return nil, &apiError{status: 429, msg: detail, reason: "queue_full", retryAfter: time.Second}
	}
	records := make([]*jobRecord, n)
	for i, j := range jobs {
		id := j.id
		if id == "" {
			s.seq++
			id = fmt.Sprintf("j-%d", s.seq)
			// A server-assigned ID colliding with a client-chosen one is
			// possible; keep bumping until free.
			for _, exists := s.store[id]; exists; _, exists = s.store[id] {
				s.seq++
				id = fmt.Sprintf("j-%d", s.seq)
			}
		}
		rec := &jobRecord{
			id:          id,
			tenant:      tenant,
			design:      j.design,
			graph:       j.graph,
			wellPose:    j.wellPose,
			timeout:     j.timeout,
			acceptedAt:  s.now(),
			status:      StatusQueued,
			requestID:   meta.requestID,
			traceParent: meta.traceParent,
			reqSpan:     meta.span,
		}
		s.store[id] = rec
		records[i] = rec
	}
	s.pipelined.Add(int64(n))
	for _, rec := range records {
		s.fpq <- rec
	}
	s.storeMu.Unlock()

	s.queueDepth.Add(int64(n))
	s.accepted.Add(uint64(n))
	s.tenantJobs.With(tenant, "accepted").Add(uint64(n))
	for _, rec := range records {
		s.events.publish(s.event(EventAdmitted, rec))
	}
	if s.log.Enabled(logx.LevelInfo) {
		s.log.Info("jobs accepted", logx.Str("tenant", tenant), logx.Int("jobs", int64(n)))
	}
	return records, nil
}

// publishShed records the tenant outcome and emits one shed event for a
// refused batch.
func (s *Server) publishShed(tenant, reason string, n int, meta *reqMeta) {
	s.tenantJobs.With(tenant, "shed").Add(uint64(n))
	ev := s.event(EventShed, nil)
	ev.Tenant = tenant
	ev.Reason = reason
	ev.Jobs = n
	ev.RequestID = meta.requestID
	s.events.publish(ev)
}

// releaseN returns n admitted slots to the tenant (refusal after the
// limiter said yes).
func (s *Server) releaseN(tenant string, n int) {
	for i := 0; i < n; i++ {
		s.limiter.release(tenant)
	}
}

// Drain performs the graceful-shutdown handshake, idempotently:
//
//  1. flip draining — /readyz answers 503 and POST /v1/jobs answers 503
//     from this moment;
//  2. wait out submitters already past the flag (the intake lock), then
//     close the pipeline's intake channel;
//  3. let the stages drain in order — the fingerprint stage forwards
//     its backlog and closes the admission queue, the schedule workers
//     finish every admitted job, and the render workers publish every
//     terminal state — so every 202 the server ever returned resolves
//     to exactly one terminal result.
//
// Drain returns nil once the pool is idle, or ctx.Err() if the deadline
// expires first (jobs may then still be running; the caller decides
// whether to hard-exit). Only the first call drains; later calls just
// wait on the same completion.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.intakeMu.Lock()
		close(s.fpq)
		s.intakeMu.Unlock()
		if s.log.Enabled(logx.LevelInfo) {
			s.log.Info("drain started", logx.Int("queued", s.pipelined.Load()))
		}
		go func() {
			// Stage-ordered shutdown: fpStage forwards its backlog and
			// closes queue; the schedule workers finish and exit; closing
			// renderq then lets the render workers publish the last
			// terminal states before the event stream closes — the stream
			// closes complete, after the last done/failed, never before.
			s.fpWG.Wait()
			s.wg.Wait()
			close(s.renderq)
			s.renderWG.Wait()
			s.events.close()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		if s.log.Enabled(logx.LevelInfo) {
			s.log.Info("drain complete")
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drained reports drain completion (closed when the last pipeline
// stage exits).
func (s *Server) Drained() <-chan struct{} { return s.drained }

// job looks up a record by ID.
func (s *Server) job(id string) (*jobRecord, bool) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	rec, ok := s.store[id]
	return rec, ok
}

// view renders a record. withOffsets adds the offset table (terminal
// successful jobs only); the schedule's offsets are immutable once
// published, so rendering happens outside storeMu on a copied result —
// but under the record's renderMu, because a concurrent PATCH mutates
// the record's graph in place and the renderer walks it. The default
// mode (irredundant anchors) usually skips the walk entirely: the
// render stage pre-rendered that table into preOffsets, and the string
// snapshot stays valid even as the graph changes underneath.
func (s *Server) view(rec *jobRecord, mode relsched.AnchorMode, withOffsets bool) JobView {
	if withOffsets {
		rec.renderMu.Lock()
		defer rec.renderMu.Unlock()
	}
	s.storeMu.Lock()
	v := JobView{ID: rec.id, Status: rec.status, Tenant: rec.tenant, Patches: rec.patches,
		RequestID: rec.requestID, TraceParent: rec.traceParent}
	res := rec.result
	errKind := rec.errKind
	pre := rec.preOffsets
	s.storeMu.Unlock()

	switch v.Status {
	case StatusDone:
		v.CacheHit = res.CacheHit
		v.DurationNS = res.Duration.Nanoseconds()
		v.SerializationEdges = res.SerializationEdges
		if res.Info != nil {
			v.Anchors = res.Info.NumAnchors()
		}
		if res.Schedule != nil {
			v.Iterations = res.Schedule.Iterations
			if withOffsets {
				if mode == relsched.IrredundantAnchors && pre != "" {
					v.Offsets = pre
				} else {
					var b strings.Builder
					if err := cgio.WriteOffsets(&b, res.Schedule, mode); err == nil {
						v.Offsets = b.String()
					}
				}
			}
		}
	case StatusFailed:
		v.DurationNS = res.Duration.Nanoseconds()
		if res.Err != nil {
			v.Error = res.Err.Error()
		}
		v.ErrorKind = errKind
	}
	return v
}

// errKind classifies a job verdict with the flight recorder's taxonomy.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return flight.ErrKindTimeout
	case errors.Is(err, context.Canceled):
		return flight.ErrKindCanceled
	}
	var ill *relsched.IllPosedError
	if errors.As(err, &ill) {
		return flight.ErrKindIllPosed
	}
	return flight.ErrKindError
}

// StatusView is the GET /v1/status (and admin config) response.
type StatusView struct {
	Ready         bool    `json:"ready"`
	Draining      bool    `json:"draining"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	CacheCapacity int     `json:"cache_capacity"`
	RatePerTenant float64 `json:"rate_per_tenant"`
	Burst         int     `json:"burst"`
	TenantQuota   int     `json:"tenant_quota"`
	JobsQueued    int     `json:"jobs_queued"`
	JobsRunning   int     `json:"jobs_running"`
	JobsDone      int     `json:"jobs_done"`
	JobsFailed    int     `json:"jobs_failed"`
	// Patches totals graph edits applied via PATCH /v1/jobs/{id}; the
	// Delta* fields split the same traffic by engine outcome (see
	// engine.MetricDelta*). DeltaWarmHits counts jobs answered from the
	// generation-keyed warm map.
	Patches       uint64 `json:"patches"`
	DeltaApplied  uint64 `json:"delta_applied"`
	DeltaFailed   uint64 `json:"delta_failed"`
	DeltaWarmHits uint64 `json:"delta_warm_hits"`
	// SpansDropped is trace.Tracer.Dropped(): span history lost to ring
	// wrap-around since the process started.
	SpansDropped uint64 `json:"spans_dropped"`
	// EventsDropped is serve.events.dropped: /v1/events deliveries
	// abandoned because a subscriber overflowed (the subscriber was
	// disconnected and must re-sync). EventSubscribers is the live SSE
	// subscription count.
	EventsDropped    uint64 `json:"events_dropped"`
	EventSubscribers int    `json:"event_subscribers"`
	// Runtime summarizes the Go runtime telemetry bridge (present only
	// when the server was started with runtime sampling on).
	Runtime *RuntimeStatus `json:"runtime,omitempty"`
}

// RuntimeStatus is the /v1/status summary of the runtime/metrics bridge
// (see obs.RuntimeSampler; the full histograms are on /metrics).
type RuntimeStatus struct {
	Goroutines        int64 `json:"goroutines"`
	HeapLiveBytes     int64 `json:"heap_live_bytes"`
	GCCycles          int64 `json:"gc_cycles"`
	GCPauseP99NS      int64 `json:"gc_pause_p99_ns"`
	SchedLatencyP99NS int64 `json:"sched_latency_p99_ns"`
}

// Status snapshots the server.
func (s *Server) Status() StatusView {
	rate, burst, quota := s.limiter.policy()
	s.spansDropped.Set(int64(s.tracer.Dropped()))
	snap := s.eng.Metrics().Snapshot()
	counters := snap.Counters
	v := StatusView{
		Ready:         s.Ready(),
		Draining:      s.draining.Load(),
		Workers:       s.Workers(),
		QueueDepth:    int(s.pipelined.Load()),
		QueueCapacity: s.queueCap,
		CacheCapacity: s.eng.CacheCapacity(),
		RatePerTenant: rate,
		Burst:         burst,
		TenantQuota:   quota,
		Patches:       counters[MetricJobsPatched],
		DeltaApplied:  counters[engine.MetricDeltaApplied],
		DeltaFailed:   counters[engine.MetricDeltaFailed],
		DeltaWarmHits: counters[engine.MetricDeltaWarmHits],
		SpansDropped:  s.tracer.Dropped(),
		EventsDropped: counters[MetricEventsDropped],
	}
	v.EventSubscribers = s.events.subscribers()
	if s.runtime != nil {
		// Sample on read too, so /v1/status is current even between polls.
		s.runtime.Sample()
		snap = s.eng.Metrics().Snapshot()
		v.Runtime = &RuntimeStatus{
			Goroutines:        snap.Gauges[obs.MetricRuntimeGoroutines],
			HeapLiveBytes:     snap.Gauges[obs.MetricRuntimeHeapLiveBytes],
			GCCycles:          snap.Gauges[obs.MetricRuntimeGCCycles],
			GCPauseP99NS:      snap.Histograms[obs.MetricRuntimeGCPause].P99NS,
			SchedLatencyP99NS: snap.Histograms[obs.MetricRuntimeSchedLatency].P99NS,
		}
	}
	s.storeMu.Lock()
	for _, rec := range s.store {
		switch rec.status {
		case StatusQueued:
			v.JobsQueued++
		case StatusRunning:
			v.JobsRunning++
		case StatusDone:
			v.JobsDone++
		case StatusFailed:
			v.JobsFailed++
		}
	}
	s.storeMu.Unlock()
	return v
}
