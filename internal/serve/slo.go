package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the serving layer's SLO tracker: rolling-window latency
// and error objectives evaluated with the multi-window burn-rate method.
//
// The model: an objective like "99% of jobs finish under 100ms" leaves a
// 1% error budget. The burn rate of a window is the observed bad
// fraction divided by that budget — burn 1 means the budget is being
// consumed exactly as fast as it is granted; burn 10 means it is gone in
// a tenth of the period. A page-worthy burn must be fast enough to
// matter AND sustained enough to be real, so the tracker requires the
// threshold to be exceeded on both a fast window (reacts in minutes,
// noisy alone) and a slow window (smooths blips, laggy alone) — the
// standard multi-window guard against both flappy and stale alerts.
// When both windows burn, the tracker fires one action per cooldown:
// a flight bundle + profile capture pair, cross-linked, plus an
// slo_burn event on /v1/events.

// SLO metric names (registered on the engine's registry). Burn-rate
// gauges are scaled ×1000 (a value of 14400 is burn rate 14.4) since
// gauges are integral.
const (
	MetricSLOLatencyBurnFast = "serve.slo.latency.burn_fast"
	MetricSLOLatencyBurnSlow = "serve.slo.latency.burn_slow"
	MetricSLOErrorBurnFast   = "serve.slo.error.burn_fast"
	MetricSLOErrorBurnSlow   = "serve.slo.error.burn_slow"
	// MetricSLOBurnEvents counts burn-rate trigger firings (each fires a
	// flight bundle + profile capture, subject to their own rate limits).
	MetricSLOBurnEvents = "serve.slo.burn_events"
)

// SLOConfig declares the service objectives. The zero value of any field
// selects its default; a nil *SLOConfig in Options disables tracking
// entirely (no per-job overhead).
type SLOConfig struct {
	// LatencyObjective is the per-job latency bound (admission to
	// terminal state, queue wait included). Default 100ms.
	LatencyObjective time.Duration
	// LatencyTarget is the fraction of jobs that must meet the bound,
	// e.g. 0.99. Default 0.99.
	LatencyTarget float64
	// ErrorTarget is the fraction of jobs that must succeed, e.g. 0.999.
	// Default 0.999. Jobs failing with any verdict count against it.
	ErrorTarget float64
	// FastWindow and SlowWindow are the two burn-rate windows.
	// Defaults 5m and 1h.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn rate that must be exceeded on both
	// windows to fire. Default 10 (the budget would be gone in a tenth
	// of the SLO period).
	BurnThreshold float64
	// MinSamples is the minimum job count in the fast window before burn
	// is evaluated — burn on three jobs is noise. Default 10.
	MinSamples int
	// Cooldown is the minimum spacing between burn firings. Default 5m.
	Cooldown time.Duration
}

// withDefaults resolves zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 100 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.ErrorTarget <= 0 || c.ErrorTarget >= 1 {
		c.ErrorTarget = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	return c
}

// sloBucket accumulates one second of terminal job outcomes.
type sloBucket struct {
	total uint32
	slow  uint32 // latency objective violations
	errs  uint32 // failed jobs
}

// SLOBurn describes the most recent burn firing, surfaced on /v1/slo.
type SLOBurn struct {
	TimeUTC string `json:"time_utc"`
	Reason  string `json:"reason"`
	// Flight is the bundle the firing dumped ("" when the flight
	// recorder was off or rate-limited it); Profiles the cross-linked
	// capture paths ({"cpu": …, "heap": …}, "" entries omitted).
	Flight   string            `json:"flight,omitempty"`
	Profiles map[string]string `json:"profiles,omitempty"`
}

// SLOWindowView is one window's burn arithmetic on /v1/slo.
type SLOWindowView struct {
	Seconds     int64   `json:"seconds"`
	Total       uint64  `json:"total"`
	Slow        uint64  `json:"slow"`
	Errors      uint64  `json:"errors"`
	LatencyBurn float64 `json:"latency_burn"`
	ErrorBurn   float64 `json:"error_burn"`
}

// SLOView is the GET /v1/slo response.
type SLOView struct {
	Enabled            bool          `json:"enabled"`
	LatencyObjectiveMS float64       `json:"latency_objective_ms,omitempty"`
	LatencyTarget      float64       `json:"latency_target,omitempty"`
	ErrorTarget        float64       `json:"error_target,omitempty"`
	BurnThreshold      float64       `json:"burn_threshold,omitempty"`
	Fast               SLOWindowView `json:"fast,omitzero"`
	Slow               SLOWindowView `json:"slow,omitzero"`
	BurnEvents         uint64        `json:"burn_events"`
	LastBurn           *SLOBurn      `json:"last_burn,omitempty"`
}

// sloTracker is the rolling-window store: one bucket per second over the
// slow window, advanced lazily on observation. All methods are cheap —
// record is O(1) amortized and evaluation (O(window seconds) sums) runs
// at most once per second.
type sloTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	buckets []sloBucket
	headSec int64 // unix second the head bucket covers; 0 = empty
	head    int

	lastEvalSec int64
	lastFire    time.Time
	fired       uint64
	lastBurn    *SLOBurn

	latFast, latSlow *obs.Gauge
	errFast, errSlow *obs.Gauge
	burns            *obs.Counter
}

func newSLOTracker(cfg SLOConfig, reg *obs.Registry) *sloTracker {
	cfg = cfg.withDefaults()
	return &sloTracker{
		cfg:     cfg,
		buckets: make([]sloBucket, int(cfg.SlowWindow/time.Second)+1),
		latFast: reg.Gauge(MetricSLOLatencyBurnFast),
		latSlow: reg.Gauge(MetricSLOLatencyBurnSlow),
		errFast: reg.Gauge(MetricSLOErrorBurnFast),
		errSlow: reg.Gauge(MetricSLOErrorBurnSlow),
		burns:   reg.Counter(MetricSLOBurnEvents),
	}
}

// advanceLocked moves the ring head to sec, zeroing skipped seconds.
func (t *sloTracker) advanceLocked(sec int64) {
	if t.headSec == 0 {
		t.headSec = sec
		return
	}
	gap := sec - t.headSec
	if gap <= 0 {
		return
	}
	if gap > int64(len(t.buckets)) {
		gap = int64(len(t.buckets))
	}
	for i := int64(0); i < gap; i++ {
		t.head = (t.head + 1) % len(t.buckets)
		t.buckets[t.head] = sloBucket{}
	}
	t.headSec = sec
}

// observe records one terminal job outcome and, at most once per second,
// re-evaluates the burn rates. It returns a non-empty reason when the
// multi-window threshold fired and the cooldown allows acting on it; the
// caller performs the (slow) flight + profile work outside the lock.
func (t *sloTracker) observe(now time.Time, latency time.Duration, failed bool) (reason string, fire bool) {
	if t == nil {
		return "", false
	}
	sec := now.Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(sec)
	b := &t.buckets[t.head]
	b.total++
	if latency > t.cfg.LatencyObjective {
		b.slow++
	}
	if failed {
		b.errs++
	}
	if sec == t.lastEvalSec {
		return "", false
	}
	t.lastEvalSec = sec
	return t.evaluateLocked(now)
}

// windowLocked sums the most recent n seconds.
func (t *sloTracker) windowLocked(n int) (total, slow, errs uint64) {
	if n > len(t.buckets) {
		n = len(t.buckets)
	}
	for i := 0; i < n; i++ {
		b := &t.buckets[(t.head-i+len(t.buckets))%len(t.buckets)]
		total += uint64(b.total)
		slow += uint64(b.slow)
		errs += uint64(b.errs)
	}
	return
}

// burnRate is badCount/total scaled by the inverse error budget; 0 when
// the window is empty.
func burnRate(bad, total uint64, target float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// evaluateLocked recomputes the four burn gauges and applies the
// multi-window rule. Caller holds t.mu.
func (t *sloTracker) evaluateLocked(now time.Time) (string, bool) {
	fastN := int(t.cfg.FastWindow / time.Second)
	slowN := int(t.cfg.SlowWindow / time.Second)
	fTotal, fSlow, fErrs := t.windowLocked(fastN)
	sTotal, sSlow, sErrs := t.windowLocked(slowN)

	latFast := burnRate(fSlow, fTotal, t.cfg.LatencyTarget)
	latSlow := burnRate(sSlow, sTotal, t.cfg.LatencyTarget)
	errFast := burnRate(fErrs, fTotal, t.cfg.ErrorTarget)
	errSlow := burnRate(sErrs, sTotal, t.cfg.ErrorTarget)
	t.latFast.Set(int64(latFast*1000 + 0.5))
	t.latSlow.Set(int64(latSlow*1000 + 0.5))
	t.errFast.Set(int64(errFast*1000 + 0.5))
	t.errSlow.Set(int64(errSlow*1000 + 0.5))

	if fTotal < uint64(t.cfg.MinSamples) {
		return "", false
	}
	if !t.lastFire.IsZero() && now.Sub(t.lastFire) < t.cfg.Cooldown {
		return "", false
	}
	th := t.cfg.BurnThreshold
	switch {
	case latFast >= th && latSlow >= th:
		t.lastFire = now
		t.fired++
		t.burns.Inc()
		return fmtBurnReason("latency", latFast, latSlow, th, fSlow, fTotal, t.cfg), true
	case errFast >= th && errSlow >= th:
		t.lastFire = now
		t.fired++
		t.burns.Inc()
		return fmtBurnReason("error", errFast, errSlow, th, fErrs, fTotal, t.cfg), true
	}
	return "", false
}

// fmtBurnReason renders the human sentence a firing carries into the
// flight bundle, the slo_burn event, and /v1/slo.
func fmtBurnReason(objective string, fast, slow, th float64, bad, total uint64, cfg SLOConfig) string {
	return fmt.Sprintf("%s SLO burn: fast %.1fx / slow %.1fx >= threshold %.1fx (%d/%d bad in %v window)",
		objective, fast, slow, th, bad, total, cfg.FastWindow)
}

// setLastBurn records the artifacts a firing produced.
func (t *sloTracker) setLastBurn(b SLOBurn) {
	t.mu.Lock()
	t.lastBurn = &b
	t.mu.Unlock()
}

// view renders the tracker for /v1/slo, evaluating the windows as of
// now so the numbers are current even on an idle server.
func (t *sloTracker) view(now time.Time) SLOView {
	if t == nil {
		return SLOView{Enabled: false}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(now.Unix())
	fastN := int(t.cfg.FastWindow / time.Second)
	slowN := int(t.cfg.SlowWindow / time.Second)
	fTotal, fSlow, fErrs := t.windowLocked(fastN)
	sTotal, sSlow, sErrs := t.windowLocked(slowN)
	v := SLOView{
		Enabled:            true,
		LatencyObjectiveMS: float64(t.cfg.LatencyObjective) / float64(time.Millisecond),
		LatencyTarget:      t.cfg.LatencyTarget,
		ErrorTarget:        t.cfg.ErrorTarget,
		BurnThreshold:      t.cfg.BurnThreshold,
		Fast: SLOWindowView{
			Seconds:     int64(fastN),
			Total:       fTotal,
			Slow:        fSlow,
			Errors:      fErrs,
			LatencyBurn: burnRate(fSlow, fTotal, t.cfg.LatencyTarget),
			ErrorBurn:   burnRate(fErrs, fTotal, t.cfg.ErrorTarget),
		},
		Slow: SLOWindowView{
			Seconds:     int64(slowN),
			Total:       sTotal,
			Slow:        sSlow,
			Errors:      sErrs,
			LatencyBurn: burnRate(sSlow, sTotal, t.cfg.LatencyTarget),
			ErrorBurn:   burnRate(sErrs, sTotal, t.cfg.ErrorTarget),
		},
		BurnEvents: t.fired,
	}
	if t.lastBurn != nil {
		lb := *t.lastBurn
		v.LastBurn = &lb
	}
	return v
}
