package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/prof"
)

// slowObs observes n consecutive seconds of all-slow traffic and returns
// how many times the tracker fired and the last reason.
func slowObs(t *sloTracker, base time.Time, n int) (fired int, reason string) {
	for i := 0; i < n; i++ {
		r, f := t.observe(base.Add(time.Duration(i)*time.Second), 10*time.Millisecond, false)
		if f {
			fired++
			reason = r
		}
	}
	return
}

func TestSLOTrackerMultiWindowLatencyBurn(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newSLOTracker(SLOConfig{
		LatencyObjective: time.Millisecond,
		MinSamples:       5,
		Cooldown:         time.Hour,
	}, reg)
	base := time.Unix(1_000_000, 0)

	fired, reason := slowObs(tr, base, 8)
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (cooldown suppresses repeats)", fired)
	}
	if reason == "" || !containsAll(reason, "latency SLO burn", "threshold") {
		t.Fatalf("reason = %q, want a latency burn sentence", reason)
	}

	// Every observation violates the objective, so burn = 1/(1-0.99) =
	// 100×; the gauges carry it ×1000.
	snap := reg.Snapshot()
	for _, name := range []string{MetricSLOLatencyBurnFast, MetricSLOLatencyBurnSlow} {
		if got := snap.Gauges[name]; got != 100_000 {
			t.Errorf("%s = %d, want 100000", name, got)
		}
	}
	if got := snap.Counters[MetricSLOBurnEvents]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricSLOBurnEvents, got)
	}
}

func TestSLOTrackerMinSamplesGate(t *testing.T) {
	tr := newSLOTracker(SLOConfig{
		LatencyObjective: time.Millisecond,
		MinSamples:       50,
		Cooldown:         time.Hour,
	}, obs.NewRegistry())
	// 10 all-slow observations burn at 100× but stay under the sample
	// floor — noise, not a page.
	if fired, _ := slowObs(tr, time.Unix(1_000_000, 0), 10); fired != 0 {
		t.Fatalf("fired %d times under the MinSamples floor, want 0", fired)
	}
}

func TestSLOTrackerErrorBurn(t *testing.T) {
	tr := newSLOTracker(SLOConfig{MinSamples: 3, Cooldown: time.Hour}, obs.NewRegistry())
	base := time.Unix(1_000_000, 0)
	var fired int
	var reason string
	for i := 0; i < 6; i++ {
		// Fast jobs (latency fine) that all fail: only the error
		// objective burns.
		r, f := tr.observe(base.Add(time.Duration(i)*time.Second), time.Microsecond, true)
		if f {
			fired++
			reason = r
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if !containsAll(reason, "error SLO burn") {
		t.Fatalf("reason = %q, want an error burn sentence", reason)
	}
}

func TestSLOTrackerCooldownSpacing(t *testing.T) {
	tr := newSLOTracker(SLOConfig{
		LatencyObjective: time.Millisecond,
		MinSamples:       2,
		Cooldown:         time.Nanosecond, // effectively off
	}, obs.NewRegistry())
	if fired, _ := slowObs(tr, time.Unix(1_000_000, 0), 5); fired < 2 {
		t.Fatalf("fired %d times with cooldown off, want every evaluation past the floor", fired)
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *sloTracker
	if _, fired := tr.observe(time.Now(), time.Second, true); fired {
		t.Fatal("nil tracker fired")
	}
	if v := tr.view(time.Now()); v.Enabled {
		t.Fatal("nil tracker view reports enabled")
	}
}

// TestSLOBurnProducesLinkedFlightAndProfile is the PR's acceptance
// criterion end to end inside the serving layer: a burn firing must dump
// a flight bundle and a profile capture pair, cross-linked — the bundle
// JSON carries the profile paths, and /v1/slo reports both.
func TestSLOBurnProducesLinkedFlightAndProfile(t *testing.T) {
	dir := t.TempDir()
	profiler, err := prof.New(prof.Options{
		Dir:         dir,
		CPUDuration: 30 * time.Millisecond,
		MinInterval: -1, // no rate limiting in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := flight.New(flight.Options{Dir: dir, MinInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, 1, func(o *Options) {
		o.Flight = rec
		o.Prof = profiler
		o.SLO = &SLOConfig{
			LatencyObjective: time.Nanosecond, // every real job violates it
			MinSamples:       1,
			Cooldown:         time.Hour,
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	views := decodeJobs(t, postJobs(t, ts, "", "application/json", singleJob("burnjob")))
	if len(views) != 1 {
		t.Fatalf("accepted %d jobs, want 1", len(views))
	}
	waitFor(t, "burnjob terminal", func() bool {
		var v JobView
		getJSON(t, ts, "/v1/jobs/burnjob", &v)
		return v.Status == StatusDone
	})

	// The firing runs asynchronously off the worker goroutine.
	var burn *SLOBurn
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v := s.slo.view(time.Now()); v.LastBurn != nil {
			burn = v.LastBurn
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if burn == nil {
		t.Fatal("no SLO burn recorded within 5s")
	}
	profiler.Wait() // let the CPU half of the capture seal

	if burn.Flight == "" {
		t.Fatal("burn carries no flight bundle path")
	}
	if burn.Profiles["cpu"] == "" || burn.Profiles["heap"] == "" {
		t.Fatalf("burn profiles = %v, want cpu and heap paths", burn.Profiles)
	}
	for kind, path := range burn.Profiles {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("%s profile %s: stat err %v", kind, path, err)
		}
	}

	// The cross-link: the flight bundle's job record must name the same
	// capture files.
	data, err := os.ReadFile(burn.Flight)
	if err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Trigger string `json:"trigger"`
		Job     struct {
			ErrKind  string            `json:"err_kind"`
			Profiles map[string]string `json:"profiles"`
		} `json:"job"`
	}
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatalf("flight bundle %s: %v", burn.Flight, err)
	}
	if bundle.Trigger != string(flight.TriggerSLOBurn) {
		t.Errorf("bundle trigger = %q, want %q", bundle.Trigger, flight.TriggerSLOBurn)
	}
	if bundle.Job.ErrKind != "slo_burn" {
		t.Errorf("bundle err_kind = %q, want slo_burn", bundle.Job.ErrKind)
	}
	if bundle.Job.Profiles["cpu"] != burn.Profiles["cpu"] || bundle.Job.Profiles["heap"] != burn.Profiles["heap"] {
		t.Errorf("bundle profiles %v != burn profiles %v", bundle.Job.Profiles, burn.Profiles)
	}
	if filepath.Dir(bundle.Job.Profiles["heap"]) != dir {
		t.Errorf("heap profile not in capture dir: %s", bundle.Job.Profiles["heap"])
	}
}

// TestSLOEndpoint exercises GET /v1/slo through the public handler, both
// disabled (no SLO configured) and enabled.
func TestSLOEndpoint(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var v SLOView
	getJSON(t, ts, "/v1/slo", &v)
	if v.Enabled {
		t.Fatal("SLO reported enabled on a server without SLOConfig")
	}

	s2 := testServer(t, 1, func(o *Options) {
		o.SLO = &SLOConfig{LatencyObjective: 25 * time.Millisecond}
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var v2 SLOView
	getJSON(t, ts2, "/v1/slo", &v2)
	if !v2.Enabled {
		t.Fatal("SLO reported disabled")
	}
	if v2.LatencyObjectiveMS != 25 {
		t.Errorf("latency_objective_ms = %v, want 25", v2.LatencyObjectiveMS)
	}
	if v2.Fast.Seconds != 300 || v2.Slow.Seconds != 3600 {
		t.Errorf("window seconds = %d/%d, want 300/3600", v2.Fast.Seconds, v2.Slow.Seconds)
	}
}

// TestAdminProfileEndpoint: 404 without capture configured, 202 with,
// 429 when the rate limiter refuses.
func TestAdminProfileEndpoint(t *testing.T) {
	s := testServer(t, 1, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := postStatus(t, ts, "/v1/admin/profile"); code != http.StatusNotFound {
		t.Fatalf("POST /v1/admin/profile without prof = %d, want 404", code)
	}

	profiler, err := prof.New(prof.Options{
		Dir:         t.TempDir(),
		CPUDuration: 20 * time.Millisecond,
		MinInterval: time.Hour, // the second capture inside the window is refused
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(profiler.Wait)
	s2 := testServer(t, 1, func(o *Options) { o.Prof = profiler })
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code := postStatus(t, ts2, "/v1/admin/profile"); code != http.StatusAccepted {
		t.Fatalf("first capture = %d, want 202", code)
	}
	profiler.Wait()
	if code := postStatus(t, ts2, "/v1/admin/profile"); code != http.StatusTooManyRequests {
		t.Fatalf("rate-limited capture = %d, want 429", code)
	}
}

// postStatus POSTs an empty body and returns the status code.
func postStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// getJSON decodes a 200 GET response into v.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
