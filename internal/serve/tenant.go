package serve

import (
	"math"
	"sync"
	"time"
)

// tenantLimiter enforces the per-tenant admission policy: a token-bucket
// rate limit (sustained jobs/second with a burst allowance) and a
// concurrency quota (jobs queued or running at once). Tenants are keyed
// by the X-Tenant request header; requests without one share the
// "default" tenant, so anonymous traffic is rate-limited as one
// aggregate rather than bypassing the policy.
//
// The limiter is deliberately lazy: a tenant's bucket materializes on
// first use and refills arithmetically from its last-touch timestamp
// (no background goroutine), so idle tenants cost one map entry and a
// flood of distinct tenant names is bounded by maxTenants — when the map
// would exceed it, stale entries (idle for a minute, zero active jobs)
// are swept; if none are stale the newcomer is admitted against a fresh
// bucket without being retained, which fails open on rate but still
// counts quota as zero (a deliberate trade: memory safety over perfect
// fairness under tenant-name cardinality attacks).
type tenantLimiter struct {
	mu sync.Mutex
	// rate is the sustained refill in tokens (jobs) per second; 0
	// disables rate limiting. burst is the bucket capacity (minimum 1
	// once rate limiting is on).
	rate  float64
	burst float64
	// quota bounds a tenant's jobs queued or running at once; 0 disables.
	quota   int
	tenants map[string]*tenantState
	now     func() time.Time
}

// maxTenants bounds the limiter's map (see the fail-open note above).
const maxTenants = 4096

// DefaultTenant is the bucket shared by requests without an X-Tenant
// header.
const DefaultTenant = "default"

type tenantState struct {
	tokens float64
	last   time.Time
	active int // jobs queued or running
}

func newTenantLimiter(rate float64, burst, quota int, now func() time.Time) *tenantLimiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if rate > 0 && b < 1 {
		b = 1
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   b,
		quota:   quota,
		tenants: make(map[string]*tenantState),
		now:     now,
	}
}

// admitVerdict is the outcome of one admission check.
type admitVerdict struct {
	ok bool
	// reason is "rate" or "quota" on refusal.
	reason string
	// retryAfter is the client hint: how long until the bucket has the
	// tokens (rate) or a conservative fixed hint (quota).
	retryAfter time.Duration
}

// admit asks for n job slots for the tenant. On success the tenant's
// active count grows by n (the caller must release each job exactly
// once); on refusal nothing is consumed — a rejected batch takes no
// tokens, so a client retrying after Retry-After is not double-charged.
func (l *tenantLimiter) admit(tenant string, n int) admitVerdict {
	if tenant == "" {
		tenant = DefaultTenant
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.lookupLocked(tenant)
	now := l.now()
	if l.rate > 0 {
		ts.tokens = math.Min(l.burst, ts.tokens+now.Sub(ts.last).Seconds()*l.rate)
	}
	ts.last = now
	if l.quota > 0 && ts.active+n > l.quota {
		return admitVerdict{
			reason: "quota",
			// No token arithmetic predicts when running jobs finish; hint
			// one second, the order of a slow scheduling job.
			retryAfter: time.Second,
		}
	}
	if l.rate > 0 && ts.tokens < float64(n) {
		need := float64(n) - ts.tokens
		return admitVerdict{
			reason:     "rate",
			retryAfter: time.Duration(math.Ceil(need / l.rate * float64(time.Second))),
		}
	}
	if l.rate > 0 {
		ts.tokens -= float64(n)
	}
	ts.active += n
	return admitVerdict{ok: true}
}

// release returns one job slot to the tenant (call once per admitted
// job, when it reaches a terminal state).
func (l *tenantLimiter) release(tenant string) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ts, ok := l.tenants[tenant]; ok && ts.active > 0 {
		ts.active--
	}
}

// setPolicy hot-reloads the limits. Existing buckets keep their token
// level, clamped to the new burst; active counts are untouched.
func (l *tenantLimiter) setPolicy(rate float64, burst, quota int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := float64(burst)
	if rate > 0 && b < 1 {
		b = 1
	}
	l.rate, l.burst, l.quota = rate, b, quota
	for _, ts := range l.tenants {
		if ts.tokens > l.burst {
			ts.tokens = l.burst
		}
	}
}

// policy reports the current limits.
func (l *tenantLimiter) policy() (rate float64, burst, quota int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate, int(l.burst), l.quota
}

// lookupLocked returns the tenant's state, creating it (full bucket)
// on first sight and sweeping stale entries when the map is at its
// bound. Caller holds l.mu.
func (l *tenantLimiter) lookupLocked(tenant string) *tenantState {
	if ts, ok := l.tenants[tenant]; ok {
		return ts
	}
	if len(l.tenants) >= maxTenants {
		cutoff := l.now().Add(-time.Minute)
		for name, ts := range l.tenants {
			if ts.active == 0 && ts.last.Before(cutoff) {
				delete(l.tenants, name)
			}
		}
	}
	ts := &tenantState{tokens: l.burst, last: l.now()}
	if len(l.tenants) < maxTenants {
		l.tenants[tenant] = ts
	}
	return ts
}
