package serve

import (
	"fmt"
	"testing"
	"time"
)

// limiterClock is a deterministic clock for the token-bucket math.
type limiterClock struct{ t time.Time }

func (c *limiterClock) now() time.Time          { return c.t }
func (c *limiterClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newLimiterClock() *limiterClock { return &limiterClock{t: time.Unix(1000, 0)} }

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(2, 4, 0, clk.now) // 2 jobs/s, burst 4

	if v := l.admit("a", 4); !v.ok {
		t.Fatalf("burst of 4 refused: %+v", v)
	}
	v := l.admit("a", 1)
	if v.ok || v.reason != "rate" {
		t.Fatalf("empty bucket admitted: %+v", v)
	}
	// 1 token missing at 2/s: the hint is the exact wait, rounded up.
	if v.retryAfter != 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want 500ms", v.retryAfter)
	}

	clk.advance(time.Second) // +2 tokens
	if v := l.admit("a", 2); !v.ok {
		t.Fatalf("refilled tokens refused: %+v", v)
	}
	// Refill clamps at burst: a long idle doesn't bank unlimited credit.
	clk.advance(time.Hour)
	if v := l.admit("a", 5); v.ok {
		t.Fatal("admitted above burst after idle")
	}
	if v := l.admit("a", 4); !v.ok {
		t.Fatalf("burst after idle refused: %+v", v)
	}
}

func TestLimiterRefusalConsumesNothing(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(1, 2, 0, clk.now)

	// An oversized batch is refused whole — and the very next affordable
	// batch still has the full bucket.
	if v := l.admit("a", 3); v.ok {
		t.Fatal("batch over burst admitted")
	}
	if v := l.admit("a", 2); !v.ok {
		t.Fatalf("refusal consumed tokens: %+v", v)
	}
}

func TestLimiterQuota(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(0, 0, 2, clk.now) // no rate limit, quota 2

	if v := l.admit("a", 2); !v.ok {
		t.Fatalf("under quota refused: %+v", v)
	}
	v := l.admit("a", 1)
	if v.ok || v.reason != "quota" || v.retryAfter <= 0 {
		t.Fatalf("over quota: %+v, want quota refusal with a retry hint", v)
	}
	// Finishing a job frees its slot.
	l.release("a")
	if v := l.admit("a", 1); !v.ok {
		t.Fatalf("released slot not reusable: %+v", v)
	}
	// Quota is per tenant.
	if v := l.admit("b", 2); !v.ok {
		t.Fatalf("tenant b hit tenant a's quota: %+v", v)
	}
}

func TestLimiterTenantsIndependent(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(1, 1, 0, clk.now)

	if v := l.admit("a", 1); !v.ok {
		t.Fatal("a's first job refused")
	}
	if v := l.admit("b", 1); !v.ok {
		t.Fatal("b throttled by a's bucket")
	}
}

func TestLimiterEmptyTenantIsDefault(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(1, 1, 0, clk.now)

	if v := l.admit("", 1); !v.ok {
		t.Fatal("anonymous job refused")
	}
	// "" and "default" share one bucket: anonymous traffic cannot bypass
	// the policy by omitting the header.
	if v := l.admit(DefaultTenant, 1); v.ok {
		t.Fatal("anonymous traffic and \"default\" have separate buckets")
	}
}

func TestLimiterSetPolicy(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(1, 10, 0, clk.now)
	if v := l.admit("a", 2); !v.ok {
		t.Fatal("setup admit refused")
	}

	// Shrinking burst clamps existing token levels.
	l.setPolicy(1, 3, 5)
	if rate, burst, quota := l.policy(); rate != 1 || burst != 3 || quota != 5 {
		t.Fatalf("policy = %v/%v/%v, want 1/3/5", rate, burst, quota)
	}
	if v := l.admit("a", 4); v.ok {
		t.Fatal("admitted above the new, smaller burst")
	}
	if v := l.admit("a", 3); !v.ok {
		t.Fatalf("clamped bucket refused a full burst: %+v", v)
	}

	// Disabling the rate (0) keeps the quota enforceable.
	l.setPolicy(0, 0, 5)
	if v := l.admit("a", 1); v.ok {
		// 5 active jobs already (2 + 3): quota refuses the sixth.
		t.Fatal("quota ignored after rate disabled")
	}
}

func TestLimiterDisabled(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(0, 0, 0, clk.now)
	for i := 0; i < 1000; i++ {
		if v := l.admit("a", 7); !v.ok {
			t.Fatalf("disabled limiter refused at i=%d: %+v", i, v)
		}
	}
}

func TestLimiterCardinalityBound(t *testing.T) {
	clk := newLimiterClock()
	l := newTenantLimiter(1, 1, 0, clk.now)

	// A flood of distinct tenant names fills the map to its bound...
	for i := 0; i < maxTenants; i++ {
		l.admit(fmt.Sprintf("t%d", i), 1)
		l.release(fmt.Sprintf("t%d", i))
	}
	if len(l.tenants) != maxTenants {
		t.Fatalf("map holds %d tenants, want the bound %d", len(l.tenants), maxTenants)
	}
	// ...and stays there: a newcomer while nothing is stale is served
	// from an untracked fresh bucket (fail open) instead of growing it.
	if v := l.admit("newcomer", 1); !v.ok {
		t.Fatalf("newcomer at the bound refused: %+v", v)
	}
	if len(l.tenants) > maxTenants {
		t.Fatalf("map grew past the bound: %d", len(l.tenants))
	}

	// Once the crowd is stale (idle a minute, zero active), the sweep
	// reclaims their slots and newcomers are tracked again.
	clk.advance(2 * time.Minute)
	if v := l.admit("tracked-again", 1); !v.ok {
		t.Fatalf("post-sweep admit refused: %+v", v)
	}
	if len(l.tenants) >= maxTenants {
		t.Fatalf("sweep reclaimed nothing: %d tenants", len(l.tenants))
	}
	if _, ok := l.tenants["tracked-again"]; !ok {
		t.Error("newcomer not tracked after the sweep made room")
	}
}
