package sim

// OutputTrace converts the simulator's output-port writes into a
// SignalTrace: each write becomes a step, and values hold between writes.
// Feeding the trace to another simulator co-simulates a feed-forward
// pipeline of processes (e.g. the DAIO phase decoder driving the
// receiver), which is how multi-process HardwareC systems compose when
// the data flow is acyclic.
func (s *Simulator) OutputTrace() SignalTrace {
	out := SignalTrace{}
	for _, e := range s.Events() {
		if e.Kind == EvWrite {
			out[e.Port] = append(out[e.Port], Step{Cycle: e.Cycle, Value: e.Value})
		}
	}
	return out
}

// Renamed returns a stimulus view with ports renamed: Sample(p, c) reads
// from[rename[p]] when p has a mapping, from[p] otherwise. Use it to wire
// one process's output ports to another's differently-named inputs.
func Renamed(stim Stimulus, rename map[string]string) Stimulus {
	return renamed{stim: stim, rename: rename}
}

type renamed struct {
	stim   Stimulus
	rename map[string]string
}

func (r renamed) Sample(port string, cycle int) int64 {
	if src, ok := r.rename[port]; ok {
		port = src
	}
	return r.stim.Sample(port, cycle)
}

// Overlay merges stimuli: ports present in over take precedence, all
// other ports fall through to base. Use it to add locally-generated
// control signals (resets, frame markers) on top of a chained trace.
func Overlay(base Stimulus, over SignalTrace) Stimulus {
	return overlay{base: base, over: over}
}

type overlay struct {
	base Stimulus
	over SignalTrace
}

func (o overlay) Sample(port string, cycle int) int64 {
	if _, ok := o.over[port]; ok {
		return o.over.Sample(port, cycle)
	}
	return o.base.Sample(port, cycle)
}
