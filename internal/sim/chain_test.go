package sim

import (
	"testing"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
)

// TestDAIOPipeline co-simulates the two digital-audio designs as the
// system they form on the chip: the phase decoder runs 16 cell
// activations and its bitout/strobe outputs drive the receiver, which
// deserializes the 16 bits into a sample word. This is the feed-forward
// multi-process composition OutputTrace/Renamed/Overlay exist for.
func TestDAIOPipeline(t *testing.T) {
	decRes, err := designs.DAIODecoder().Synthesize()
	if err != nil {
		t.Fatalf("decoder synth: %v", err)
	}
	rxRes, err := designs.DAIOReceiver().Synthesize()
	if err != nil {
		t.Fatalf("receiver synth: %v", err)
	}

	// A biphase-style input with a transition pattern the decoder can
	// chew on for 16 activations: alternate levels every 3 cycles.
	biphase := []Step{}
	level := int64(0)
	for c := 0; c < 4000; c += 3 {
		biphase = append(biphase, Step{Cycle: c, Value: level})
		level ^= 1
	}
	dec := New(decRes, SignalTrace{"biphase": biphase}, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := dec.RunRepeated(16, 500000); err != nil {
		t.Fatalf("decoder run: %v", err)
	}
	var bits []int64
	for _, e := range dec.EventsOf(EvWrite) {
		if e.Port == "bitout" {
			bits = append(bits, e.Value)
		}
	}
	if len(bits) != 16 {
		t.Fatalf("decoder produced %d bits, want 16", len(bits))
	}

	// Wire decoder outputs to the receiver: bitout → bitin, strobe →
	// strobe; frame is a locally-generated start marker.
	stim := Overlay(
		Renamed(dec.OutputTrace(), map[string]string{"bitin": "bitout"}),
		SignalTrace{"frame": {{Cycle: 1, Value: 1}}},
	)
	rx := New(rxRes, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := rx.Run(500000); err != nil {
		t.Fatalf("receiver run: %v", err)
	}

	var sample, valid int64 = -1, -1
	for _, e := range rx.EventsOf(EvWrite) {
		switch e.Port {
		case "sample":
			sample = e.Value
		case "valid":
			valid = e.Value
		}
	}
	var want int64
	for _, b := range bits {
		want = want<<1 | b
	}
	want &= 0xFFFF
	if sample != want {
		t.Errorf("receiver sample = %#x, want %#x (decoder bits %v)", sample, want, bits)
	}
	if valid != 1 {
		t.Errorf("valid = %d, want 1", valid)
	}
}

func TestRenamedAndOverlay(t *testing.T) {
	base := SignalTrace{"x": {{Cycle: 0, Value: 7}}}
	r := Renamed(base, map[string]string{"y": "x"})
	if r.Sample("y", 3) != 7 || r.Sample("x", 3) != 7 {
		t.Error("Renamed misroutes")
	}
	o := Overlay(r, SignalTrace{"x": {{Cycle: 0, Value: 9}}})
	if o.Sample("x", 0) != 9 || o.Sample("y", 0) != 7 {
		t.Error("Overlay misroutes")
	}
}
