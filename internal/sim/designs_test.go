package sim

import (
	"testing"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
)

// TestLengthMeasuresPulse runs the pulse-length-detector design and checks
// it reports the high time of the pulse: one loop iteration (one cycle)
// per high cycle.
func TestLengthMeasuresPulse(t *testing.T) {
	res, err := designs.Length().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for _, tc := range []struct{ rise, fall int }{{2, 9}, {1, 4}, {3, 15}} {
		stim := SignalTrace{"pulse": {{Cycle: tc.rise, Value: 1}, {Cycle: tc.fall, Value: 0}}}
		s := New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
		if _, err := s.Run(10000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		w := s.EventsOf(EvWrite)
		if len(w) != 1 {
			t.Fatalf("writes = %v", w)
		}
		want := int64(tc.fall - tc.rise)
		if w[0].Value != want {
			t.Errorf("pulse %d..%d: len = %d, want %d", tc.rise, tc.fall, w[0].Value, want)
		}
	}
}

// TestTrafficWaitsForSensor checks the traffic controller only switches
// the lights after the farm-road sensor asserts.
func TestTrafficWaitsForSensor(t *testing.T) {
	res, err := designs.Traffic().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	stim := SignalTrace{"sensor": {{Cycle: 6, Value: 1}}}
	s := New(res, stim, ctrlgen.ShiftRegister, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	w := s.EventsOf(EvWrite)
	if len(w) != 1 || w[0].Port != "highway" {
		t.Fatalf("writes = %v", w)
	}
	if w[0].Cycle < 6 {
		t.Errorf("lights switched at %d, before the sensor at 6", w[0].Cycle)
	}
}

// TestDCTPhaseAAllEqualRow feeds a constant row through the phase-A
// butterfly: by linearity all AC coefficients vanish and the DC
// coefficient is 8× the pixel value.
func TestDCTPhaseAAllEqualRow(t *testing.T) {
	res, err := designs.DCTPhaseA().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	const p = 33
	stim := SignalTrace{
		"start": {{Cycle: 1, Value: 1}},
		"ready": {{Cycle: 3, Value: 1}},
	}
	for _, port := range []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"} {
		stim[port] = []Step{{Cycle: 0, Value: p}}
	}
	s := New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(100000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var coeffs []int64
	for _, e := range s.EventsOf(EvWrite) {
		if e.Port == "tdata" {
			coeffs = append(coeffs, e.Value)
		}
	}
	if len(coeffs) != 8 {
		t.Fatalf("tdata writes = %d, want 8", len(coeffs))
	}
	if coeffs[0] != 8*p {
		t.Errorf("DC coefficient = %d, want %d", coeffs[0], 8*p)
	}
	for i, c := range coeffs[1:] {
		if c != 0 {
			t.Errorf("AC coefficient c%d = %d, want 0", i+1, c)
		}
	}
}

// TestGCDRepeatedActivations runs the gcd process twice back to back with
// different operands, exercising RunRepeated and the restart protocol.
func TestGCDRepeatedActivations(t *testing.T) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	// restart: high, falls at 3 (first run samples), rises again at 5 so
	// the second activation's wait loop holds until the fall at 25.
	// Inputs change at cycle 20, between the two samplings.
	stim := SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: 3, Value: 0}, {Cycle: 5, Value: 1}, {Cycle: 25, Value: 0}},
		"xin":     {{Cycle: 0, Value: 18}, {Cycle: 20, Value: 35}},
		"yin":     {{Cycle: 0, Value: 12}, {Cycle: 20, Value: 21}},
	}
	s := New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.RunRepeated(2, 100000); err != nil {
		t.Fatalf("RunRepeated: %v", err)
	}
	w := s.EventsOf(EvWrite)
	if len(w) != 2 {
		t.Fatalf("writes = %v, want 2", w)
	}
	if w[0].Value != 6 { // gcd(18, 12)
		t.Errorf("first result = %d, want 6", w[0].Value)
	}
	if w[1].Value != 7 { // gcd(35, 21)
		t.Errorf("second result = %d, want 7", w[1].Value)
	}
	// Both activations keep the one-cycle read separation.
	reads := s.EventsOf(EvRead)
	if len(reads) != 4 {
		t.Fatalf("reads = %v", reads)
	}
	if reads[1].Cycle != reads[0].Cycle+1 || reads[3].Cycle != reads[2].Cycle+1 {
		t.Errorf("read pairing broken: %v", reads)
	}
}
