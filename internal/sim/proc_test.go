package sim

import (
	"testing"

	"repro/internal/ctrlgen"
	"repro/internal/relsched"
	"repro/internal/synth"
)

// TestProcedureCallsEndToEnd synthesizes and simulates a process with
// nested procedure calls: each call is a hierarchical vertex whose graph
// executes once per invocation, so three bump calls (two through `twice`)
// increment v three times.
func TestProcedureCallsEndToEnd(t *testing.T) {
	src := `
process p (trigger, o)
    in port trigger;
    out port o[8];
    boolean v[8], w[8];
    procedure bump {
        v = v + 1;
        w = w + v;
    }
    procedure twice {
        call bump;
        call bump;
    }
    while (!trigger)
        ;
    call twice;
    call bump;
    write o = w;
`
	res, err := synth.SynthesizeSource(src, synth.Options{})
	if err != nil {
		t.Fatalf("SynthesizeSource: %v", err)
	}
	// Hierarchy: top, wait body, twice (2 call-site instances of bump
	// inside), top-level bump — 1 + 1 + 1 + 2 + 1 = 6 graphs.
	if len(res.Order) != 6 {
		t.Errorf("graphs = %d, want 6", len(res.Order))
	}
	// The call vertices have bounded latency (pure computation inside).
	var callLat []string
	for _, g := range res.Order {
		for _, o := range g.Ops {
			if o.Kind.String() == "call" {
				gr := res.Graphs[o.Body]
				if !gr.Latency.Bounded() {
					t.Errorf("call %s latency unbounded", o.Name)
				}
				callLat = append(callLat, o.Name)
			}
		}
	}
	if len(callLat) != 4 {
		t.Errorf("call vertices = %v, want 4", callLat)
	}

	stim := SignalTrace{"trigger": {{Cycle: 3, Value: 1}}}
	s := New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// v goes 1,2,3; w accumulates 1+2+3 = 6.
	w := s.EventsOf(EvWrite)
	if len(w) != 1 || w[0].Value != 6 {
		t.Errorf("wrote %v, want o=6", w)
	}
}
