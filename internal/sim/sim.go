// Package sim is a cycle-accurate functional simulator for synthesized
// HardwareC processes. It executes the hierarchical sequencing graph
// through the control logic generated from the relative schedule: every
// operation starts exactly when its enable — a conjunction of per-anchor
// timer conditions — asserts, with loop delays measured dynamically as the
// simulation unfolds. The simulator verifies on the fly that every timing
// constraint holds on the observed trace (invariant P9), and records an
// event trace from which the paper's Fig. 14 waveform can be reproduced.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/ctrlgen"
	"repro/internal/hcl"
	"repro/internal/relsched"
	"repro/internal/seq"
	"repro/internal/synth"
)

// Stimulus supplies input-port values per cycle.
type Stimulus interface {
	// Sample returns the value on the port at the given cycle.
	Sample(port string, cycle int) int64
}

// PortObserver is an optional extension of Stimulus: a stimulus that also
// observes output-port writes can model reactive environments — memories,
// handshaking peripherals — that answer on input ports based on what the
// design drove earlier.
type PortObserver interface {
	// OnWrite is called when the design drives an output port.
	OnWrite(port string, cycle int, value int64)
}

// Step is one transition of a piecewise-constant signal.
type Step struct {
	Cycle int
	Value int64
}

// SignalTrace is a piecewise-constant waveform per port.
type SignalTrace map[string][]Step

// Sample implements Stimulus: the value of the last step at or before the
// cycle, or 0 before the first step.
func (tr SignalTrace) Sample(port string, cycle int) int64 {
	steps := tr[port]
	var v int64
	for _, s := range steps {
		if s.Cycle > cycle {
			break
		}
		v = s.Value
	}
	return v
}

// EventKind classifies trace events.
type EventKind string

// Event kinds recorded in the trace.
const (
	EvStart EventKind = "start" // operation starts
	EvRead  EventKind = "read"  // input port sampled
	EvWrite EventKind = "write" // output port driven
	EvIter  EventKind = "iter"  // loop iteration begins
	EvDone  EventKind = "done"  // operation completes
)

// Decision records one evaluation of a loop or conditional condition —
// the data-dependent choices that determine unbounded delays. The
// adaptive-control harness replays these to drive the FSM controllers
// through the same execution. Op is the hierarchy-unique key from
// seq.Graph.OpKey.
type Decision struct {
	Op    string
	Taken bool
}

// Event is one observable action in the trace.
type Event struct {
	Cycle int
	Kind  EventKind
	Op    string // op name
	Tag   string // HardwareC tag, if any
	Port  string // for read/write events
	Value int64  // sampled or driven value
}

// String renders the event.
func (e Event) String() string {
	s := fmt.Sprintf("@%d %s %s", e.Cycle, e.Kind, e.Op)
	if e.Port != "" {
		s += fmt.Sprintf(" %s=%d", e.Port, e.Value)
	}
	return s
}

// Simulator executes one synthesized process.
type Simulator struct {
	res   *synth.Result
	stim  Stimulus
	style ctrlgen.Style
	mode  relsched.AnchorMode

	st        *state
	width     map[string]int
	events    []Event
	decisions []Decision
	ctrl      map[*seq.Graph]*ctrlgen.Controller
	owner     map[*seq.Op]*seq.Graph

	maxCycles int
	budget    int
}

// New builds a simulator for a synthesis result. The control style and
// anchor mode select which generated controller drives the execution.
func New(res *synth.Result, stim Stimulus, style ctrlgen.Style, mode relsched.AnchorMode) *Simulator {
	s := &Simulator{
		res:   res,
		stim:  stim,
		style: style,
		mode:  mode,
		st:    newState(),
		width: map[string]int{},
		ctrl:  map[*seq.Graph]*ctrlgen.Controller{},
	}
	for _, v := range res.Process.Vars {
		s.width[v.Name] = v.Width
	}
	for _, p := range res.Process.Ports {
		s.width[p.Name] = p.Width
	}
	for g, gr := range res.Graphs {
		s.ctrl[g] = ctrlgen.Synthesize(gr.Schedule, mode, style)
	}
	s.owner = map[*seq.Op]*seq.Graph{}
	res.Top.Walk(func(g *seq.Graph) {
		for _, o := range g.Ops {
			s.owner[o] = g
		}
	})
	return s
}

// Decisions returns the recorded condition evaluations, in evaluation
// order.
func (s *Simulator) Decisions() []Decision {
	return append([]Decision(nil), s.decisions...)
}

// Events returns the recorded trace, ordered by cycle (stable for equal
// cycles).
func (s *Simulator) Events() []Event {
	out := append([]Event(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// EventsOf filters the trace by kind.
func (s *Simulator) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range s.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Var returns the final committed value of a variable.
func (s *Simulator) Var(name string) int64 { return s.st.read(name, int(^uint(0)>>1)) }

// Run activates the top-level graph at cycle 0 and executes it to
// completion, enforcing every timing constraint on the observed start
// times. maxCycles bounds total simulated work to catch runaway loops.
// It returns the completion cycle.
func (s *Simulator) Run(maxCycles int) (int, error) {
	return s.RunRepeated(1, maxCycles)
}

// RunRepeated activates the top-level graph n times back to back — the
// restart behavior of a hardware process — carrying variable state across
// activations and accumulating one event trace. Every activation's timing
// constraints are enforced independently. It returns the completion cycle
// of the last activation.
func (s *Simulator) RunRepeated(n, maxCycles int) (int, error) {
	s.maxCycles = maxCycles
	s.budget = maxCycles
	s.events = s.events[:0]
	s.decisions = s.decisions[:0]
	s.st = newState()
	t := 0
	for i := 0; i < n; i++ {
		end, err := s.execGraph(s.res.Top, t)
		if err != nil {
			return 0, err
		}
		if end <= t {
			end = t + 1 // an instantaneous activation still takes a cycle
		}
		t = end
	}
	return t, nil
}

// execGraph runs one activation of a graph starting at cycle t0 and
// returns its completion cycle.
func (s *Simulator) execGraph(g *seq.Graph, t0 int) (int, error) {
	gr := s.res.Graphs[g]
	ctrl := s.ctrl[g]
	cgr := gr.CG

	// done[v] is the completion cycle of anchor vertices (absolute).
	done := make([]int, cgr.N())
	start := make([]int, cgr.N())
	actual := make([]int, cgr.N()) // measured execution delay per vertex

	// Map constraint-graph vertex -> op.
	opOf := make([]*seq.Op, cgr.N())
	for _, o := range g.Ops {
		opOf[gr.VID[o.ID]] = o
	}

	fr := s.st.push(g)
	defer s.st.pop()

	for _, v := range cgr.TopoForward() {
		if v == cgr.Source() {
			fr.cur = g.Source()
			start[v] = t0
			done[v] = t0
			continue
		}
		// enable_v: all timer conditions met.
		t := t0
		for _, term := range ctrl.Terms[v] {
			if at := done[term.Anchor] + term.Offset; at > t {
				t = at
			}
		}
		start[v] = t
		op := opOf[v]
		fr.cur = op.ID
		d, err := s.execOp(op, t)
		if err != nil {
			return 0, err
		}
		actual[v] = d
		done[v] = t + d
		if s.budget -= d + 1; s.budget < 0 {
			return 0, fmt.Errorf("sim: cycle budget %d exhausted in graph %s", s.maxCycles, g.Name)
		}
	}

	// Verify every edge inequality on the observed start times with the
	// measured delays (invariant P9).
	for ei, e := range cgr.Edges() {
		w := e.Weight
		if e.Unbounded {
			w = actual[e.From]
		}
		if start[e.To] < start[e.From]+w {
			return 0, fmt.Errorf("sim: graph %s: timing violation on edge %d (%s): T(%s)=%d < T(%s)=%d + %d",
				g.Name, ei, e, cgr.Name(e.To), start[e.To], cgr.Name(e.From), start[e.From], w)
		}
	}
	return start[cgr.Sink()], nil
}

// execOp executes one operation starting at cycle t and returns its
// measured delay.
func (s *Simulator) execOp(op *seq.Op, t int) (int, error) {
	gr := s.res.Graphs[s.graphOf(op)]
	switch op.Kind {
	case seq.OpNop:
		return 0, nil
	case seq.OpRead:
		v := s.mask(op.Target, s.stim.Sample(op.Port, t))
		d := gr.Binding.Delay(op)
		s.st.commit(op.Target, t+d, v)
		s.emit(Event{Cycle: t, Kind: EvRead, Op: op.Name, Tag: op.Tag, Port: op.Port, Value: v})
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		return d, nil
	case seq.OpWrite:
		v, err := s.eval(op.Expr, t)
		if err != nil {
			return 0, err
		}
		v = s.mask(op.Port, v)
		if obs, ok := s.stim.(PortObserver); ok {
			obs.OnWrite(op.Port, t, v)
		}
		s.emit(Event{Cycle: t, Kind: EvWrite, Op: op.Name, Tag: op.Tag, Port: op.Port, Value: v})
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		return gr.Binding.Delay(op), nil
	case seq.OpALU:
		v, err := s.eval(op.Expr, t)
		if err != nil {
			return 0, err
		}
		d := gr.Binding.Delay(op)
		s.st.commit(op.Target, t+d, s.mask(op.Target, v))
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		return d, nil
	case seq.OpLoop:
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		end, err := s.execLoop(op, t)
		if err != nil {
			return 0, err
		}
		s.emit(Event{Cycle: end, Kind: EvDone, Op: op.Name, Tag: op.Tag})
		return end - t, nil
	case seq.OpCall:
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		end, err := s.execGraph(op.Body, t)
		if err != nil {
			return 0, err
		}
		s.emit(Event{Cycle: end, Kind: EvDone, Op: op.Name, Tag: op.Tag})
		return end - t, nil
	case seq.OpCond:
		s.emit(Event{Cycle: t, Kind: EvStart, Op: op.Name, Tag: op.Tag})
		c, err := s.eval(op.Expr, t)
		if err != nil {
			return 0, err
		}
		s.decisions = append(s.decisions, Decision{Op: s.graphOf(op).OpKey(op), Taken: c != 0})
		branch := op.Then
		if c == 0 {
			branch = op.Else
		}
		if branch == nil {
			return 0, nil
		}
		end, err := s.execGraph(branch, t)
		if err != nil {
			return 0, err
		}
		return end - t, nil
	}
	return 0, fmt.Errorf("sim: cannot execute op kind %v", op.Kind)
}

// execLoop runs a loop op starting at cycle t and returns the completion
// cycle. Every iteration consumes at least one cycle, so external
// conditions are re-sampled once per cycle (the busy-wait of the gcd
// example).
func (s *Simulator) execLoop(op *seq.Op, t int) (int, error) {
	for {
		if s.budget--; s.budget < 0 {
			return 0, fmt.Errorf("sim: cycle budget exhausted in loop %s", op.Name)
		}
		if op.LoopStyle == seq.WhileLoop {
			c, err := s.eval(op.Expr, t)
			if err != nil {
				return 0, err
			}
			s.decisions = append(s.decisions, Decision{Op: s.graphOf(op).OpKey(op), Taken: c != 0})
			if c == 0 {
				return t, nil
			}
		}
		s.emit(Event{Cycle: t, Kind: EvIter, Op: op.Name, Tag: op.Tag})
		end, err := s.execGraph(op.Body, t)
		if err != nil {
			return 0, err
		}
		if end <= t {
			end = t + 1 // an empty or combinational body still takes a cycle
		}
		t = end
		if op.LoopStyle == seq.RepeatUntilLoop {
			c, err := s.eval(op.Expr, t)
			if err != nil {
				return 0, err
			}
			s.decisions = append(s.decisions, Decision{Op: s.graphOf(op).OpKey(op), Taken: c != 0})
			if c != 0 {
				return t, nil
			}
		}
	}
}

// graphOf returns the graph directly containing an op.
func (s *Simulator) graphOf(op *seq.Op) *seq.Graph { return s.owner[op] }

func (s *Simulator) emit(e Event) { s.events = append(s.events, e) }

// mask truncates a value to the declared width of a variable or port.
func (s *Simulator) mask(name string, v int64) int64 {
	w := s.width[name]
	if w <= 0 || w >= 63 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}

// eval evaluates an expression at a cycle. Identifiers resolve to
// variables, or to input-port samples when they name a declared port.
func (s *Simulator) eval(e hcl.Expr, cycle int) (int64, error) {
	switch x := e.(type) {
	case *hcl.Num:
		return x.Value, nil
	case *hcl.Ident:
		if s.isPort(x.Name) {
			return s.stim.Sample(x.Name, cycle), nil
		}
		return s.st.read(x.Name, cycle), nil
	case *hcl.Unary:
		v, err := s.eval(x.X, cycle)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case hcl.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case hcl.MINUS:
			return -v, nil
		}
	case *hcl.Binary:
		a, err := s.eval(x.X, cycle)
		if err != nil {
			return 0, err
		}
		b, err := s.eval(x.Y, cycle)
		if err != nil {
			return 0, err
		}
		return applyBinary(x.Op, a, b)
	}
	return 0, fmt.Errorf("sim: cannot evaluate %T", e)
}

func (s *Simulator) isPort(name string) bool {
	return s.res.Process.Port(name) != nil
}

func applyBinary(op hcl.Kind, a, b int64) (int64, error) {
	boolOf := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case hcl.PLUS:
		return a + b, nil
	case hcl.MINUS:
		return a - b, nil
	case hcl.STAR:
		return a * b, nil
	case hcl.SLASH:
		if b == 0 {
			return 0, fmt.Errorf("sim: division by zero")
		}
		return a / b, nil
	case hcl.PERCENT:
		if b == 0 {
			return 0, fmt.Errorf("sim: modulo by zero")
		}
		return a % b, nil
	case hcl.AND:
		return a & b, nil
	case hcl.OR:
		return a | b, nil
	case hcl.XOR:
		return a ^ b, nil
	case hcl.LAND:
		return boolOf(a != 0 && b != 0), nil
	case hcl.LOR:
		return boolOf(a != 0 || b != 0), nil
	case hcl.EQ:
		return boolOf(a == b), nil
	case hcl.NEQ:
		return boolOf(a != b), nil
	case hcl.LT:
		return boolOf(a < b), nil
	case hcl.GT:
		return boolOf(a > b), nil
	case hcl.LE:
		return boolOf(a <= b), nil
	case hcl.GE:
		return boolOf(a >= b), nil
	case hcl.SHL:
		return a << uint(b&63), nil
	case hcl.SHR:
		return a >> uint(b&63), nil
	}
	return 0, fmt.Errorf("sim: unknown operator %v", op)
}
