package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
	"repro/internal/synth"
)

func gcdOf(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func synthGCD(t testing.TB) *synth.Result {
	t.Helper()
	r, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatalf("synthesize gcd: %v", err)
	}
	return r
}

// gcdStim builds the Fig. 14 stimulus: restart high until fall, inputs
// held constant.
func gcdStim(fall int, x, y int64) SignalTrace {
	return SignalTrace{
		"restart": {{Cycle: 0, Value: 1}, {Cycle: fall, Value: 0}},
		"xin":     {{Cycle: 0, Value: x}},
		"yin":     {{Cycle: 0, Value: y}},
	}
}

// TestGCD_Fig14Trace reproduces the paper's Fig. 14 simulation: after the
// restart signal falls, yin is sampled first and xin exactly one cycle
// later (the mintime = maxtime = 1 constraints), and the correct gcd is
// written to the result port.
func TestGCD_Fig14Trace(t *testing.T) {
	res := synthGCD(t)
	s := New(res, gcdStim(5, 24, 36), ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	reads := s.EventsOf(EvRead)
	if len(reads) != 2 {
		t.Fatalf("reads = %v, want 2", reads)
	}
	var yCycle, xCycle int
	for _, e := range reads {
		switch e.Port {
		case "yin":
			yCycle = e.Cycle
			if e.Value != 36 {
				t.Errorf("sampled y = %d, want 36", e.Value)
			}
		case "xin":
			xCycle = e.Cycle
			if e.Value != 24 {
				t.Errorf("sampled x = %d, want 24", e.Value)
			}
		}
	}
	if yCycle < 5 {
		t.Errorf("y sampled at %d, before restart fell at 5", yCycle)
	}
	if xCycle != yCycle+1 {
		t.Errorf("x sampled at %d, want exactly one cycle after y at %d", xCycle, yCycle)
	}
	writes := s.EventsOf(EvWrite)
	if len(writes) != 1 {
		t.Fatalf("writes = %v, want 1", writes)
	}
	if writes[0].Port != "result" || writes[0].Value != 12 {
		t.Errorf("result = %v, want result=12", writes[0])
	}
}

// TestGCD_ZeroOperands exercises the untaken Euclid branch: with either
// input zero the conditional is skipped and x is written through.
func TestGCD_ZeroOperands(t *testing.T) {
	res := synthGCD(t)
	for _, tc := range []struct{ x, y, want int64 }{
		{0, 9, 0},
		{7, 0, 7},
		{0, 0, 0},
	} {
		s := New(res, gcdStim(3, tc.x, tc.y), ctrlgen.Counter, relsched.IrredundantAnchors)
		if _, err := s.Run(10000); err != nil {
			t.Fatalf("Run(%d,%d): %v", tc.x, tc.y, err)
		}
		w := s.EventsOf(EvWrite)
		if len(w) != 1 || w[0].Value != tc.want {
			t.Errorf("gcd(%d,%d) wrote %v, want %d", tc.x, tc.y, w, tc.want)
		}
	}
}

// TestProperty_GCDFunctional is invariant P9 plus functional correctness:
// for random inputs and random restart fall times, the simulation
// completes without timing violations, the reads stay exactly one cycle
// apart, and the written value is the gcd.
func TestProperty_GCDFunctional(t *testing.T) {
	res := synthGCD(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := int64(rng.Intn(200))
		y := int64(rng.Intn(200))
		fall := rng.Intn(12)
		s := New(res, gcdStim(fall, x, y), ctrlgen.ShiftRegister, relsched.IrredundantAnchors)
		if _, err := s.Run(100000); err != nil {
			t.Logf("seed %d (x=%d y=%d fall=%d): %v", seed, x, y, fall, err)
			return false
		}
		reads := s.EventsOf(EvRead)
		if len(reads) != 2 || reads[1].Cycle != reads[0].Cycle+1 {
			return false
		}
		want := x & 255
		if x != 0 && y != 0 {
			want = gcdOf(x, y)
		}
		w := s.EventsOf(EvWrite)
		return len(w) == 1 && w[0].Value == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestControlStylesAgree runs the same stimulus under both control styles
// and both anchor modes; the traces must be identical (Theorem 6 made
// physical).
func TestControlStylesAgree(t *testing.T) {
	res := synthGCD(t)
	var ref []Event
	for _, style := range []ctrlgen.Style{ctrlgen.Counter, ctrlgen.ShiftRegister} {
		for _, mode := range []relsched.AnchorMode{relsched.FullAnchors, relsched.IrredundantAnchors} {
			s := New(res, gcdStim(4, 30, 18), style, mode)
			if _, err := s.Run(10000); err != nil {
				t.Fatalf("style %v mode %v: %v", style, mode, err)
			}
			ev := s.Events()
			if ref == nil {
				ref = ev
				continue
			}
			if len(ev) != len(ref) {
				t.Fatalf("style %v mode %v: %d events, want %d", style, mode, len(ev), len(ref))
			}
			for i := range ev {
				if ev[i] != ref[i] {
					t.Errorf("style %v mode %v: event %d = %v, want %v", style, mode, i, ev[i], ref[i])
				}
			}
		}
	}
}

// TestSimulateAllDesigns drives every benchmark design with a generic
// stimulus: all handshake inputs eventually assert, and the run must
// complete without timing violations (invariant P9 across the suite).
func TestSimulateAllDesigns(t *testing.T) {
	stimuli := map[string]SignalTrace{
		"traffic": {"sensor": {{Cycle: 3, Value: 1}}},
		"length":  {"pulse": {{Cycle: 2, Value: 1}, {Cycle: 9, Value: 0}}},
		"gcd":     gcdStim(4, 18, 12),
		"frisc": {
			"reset": {{Cycle: 0, Value: 1}, {Cycle: 2, Value: 0}},
			// opcode 10 (halt) in the top nibble, everything else zero.
			"idata": {{Cycle: 0, Value: 10 << 12}},
			"din":   {{Cycle: 0, Value: 0}},
		},
		"daio-decoder": {
			"biphase": {{Cycle: 2, Value: 1}, {Cycle: 5, Value: 0}, {Cycle: 8, Value: 1}},
			"prev":    {},
		},
		"daio-receiver": {
			"frame":  {{Cycle: 3, Value: 1}},
			"strobe": strobePattern(4, 3, 40),
			"bitin":  {{Cycle: 0, Value: 1}},
		},
		"dct-a": {
			"start": {{Cycle: 2, Value: 1}},
			"ready": {{Cycle: 4, Value: 1}},
			"x0":    {{Cycle: 0, Value: 10}}, "x1": {{Cycle: 0, Value: 20}},
			"x2": {{Cycle: 0, Value: 30}}, "x3": {{Cycle: 0, Value: 40}},
			"x4": {{Cycle: 0, Value: 50}}, "x5": {{Cycle: 0, Value: 60}},
			"x6": {{Cycle: 0, Value: 70}}, "x7": {{Cycle: 0, Value: 80}},
		},
		"dct-b": {
			"go":    {{Cycle: 1, Value: 1}},
			"avail": {{Cycle: 3, Value: 1}},
			"t0":    {{Cycle: 0, Value: 100}}, "t1": {{Cycle: 0, Value: 90}},
			"t2": {{Cycle: 0, Value: 80}}, "t3": {{Cycle: 0, Value: 70}},
			"t4": {{Cycle: 0, Value: 60}}, "t5": {{Cycle: 0, Value: 50}},
			"t6": {{Cycle: 0, Value: 40}}, "t7": {{Cycle: 0, Value: 30}},
		},
	}
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			stim, ok := stimuli[d.Name]
			if !ok {
				t.Fatalf("no stimulus for %s", d.Name)
			}
			res, err := d.Synthesize()
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			s := New(res, stim, ctrlgen.Counter, relsched.IrredundantAnchors)
			end, err := s.Run(200000)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if end <= 0 {
				t.Errorf("completed at cycle %d, expected positive latency", end)
			}
		})
	}
}

// strobePattern builds an alternating strobe: high for hi cycles, low for
// lo cycles, starting at cycle 4, for n transitions.
func strobePattern(hi, lo, n int) []Step {
	steps := []Step{{Cycle: 0, Value: 0}}
	c := 4
	for i := 0; i < n; i++ {
		steps = append(steps, Step{Cycle: c, Value: 1})
		c += hi
		steps = append(steps, Step{Cycle: c, Value: 0})
		c += lo
	}
	return steps
}

// TestAllOperators exercises every expression operator through the
// simulator's evaluator.
func TestAllOperators(t *testing.T) {
	src := `
process ops (i, o)
    in port i[8];
    out port o[16];
    boolean a[16], b[16], r[16];
    a = read(i);
    b = 3;
    r = a + b;
    r = r - 1;
    r = r * 2;
    r = r / 3;
    r = r % 7;
    r = r & 6;
    r = r | 9;
    r = r ^ 5;
    r = r << 2;
    r = r >> 1;
    r = (a < b) + (a > b) + (a <= b) + (a >= b) + (a == b) + (a != b);
    r = (r && 1) + (r || 0) + !r + (-b);
    write o = r;
`
	res, err := synth.SynthesizeSource(src, synth.Options{})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	s := New(res, SignalTrace{"i": {{Cycle: 0, Value: 10}}}, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// a=10, b=3: comparisons: 0+1+0+1+0+1 = 3; then (3&&1)+(3||0)+!3+(-3)
	// = 1+1+0-3 = -1 masked to 16 bits.
	w := s.EventsOf(EvWrite)
	if len(w) != 1 || w[0].Value != (-1&0xFFFF) {
		t.Errorf("result = %v, want %d", w, -1&0xFFFF)
	}
}

// TestDivisionByZeroSurfaces checks the runtime error path.
func TestDivisionByZeroSurfaces(t *testing.T) {
	src := `
process dz (i, o)
    in port i[8];
    out port o[8];
    boolean a[8], r[8];
    a = read(i);
    r = 4 / a;
    write o = r;
`
	res, err := synth.SynthesizeSource(src, synth.Options{})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	s := New(res, SignalTrace{"i": {{Cycle: 0, Value: 0}}}, ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err == nil {
		t.Error("expected division-by-zero error")
	}
}
