package sim

import "repro/internal/seq"

// Variable visibility semantics. Operations execute at cycles; a commit to
// a variable at cycle d is visible to a read at cycle t when
//
//   - d < t (the value was registered on an earlier cycle), or
//   - d == t and the producer precedes the reader in the sequencing
//     graph (combinational chaining through zero-delay operations), or
//   - d == t and the commit came from an earlier, already-completed
//     activation (sequential loop iterations).
//
// Parallel operations — no path either way — never see each other's
// same-cycle commits, which is what makes the gcd swap `< y = x; x = y; >`
// exchange values like a pair of registers.
//
// Commits are tagged with the activation-frame stack at the time of the
// write; visibility of a same-cycle commit is decided at the deepest
// frame shared between the commit and the reader, by asking whether the
// commit's vertex at that frame precedes the reader's vertex there.

// frame is one live graph activation.
type frame struct {
	id    int
	graph *seq.Graph
	pred  [][]bool // transitive predecessor closure of the graph's edges
	cur   int      // op currently executing in this activation
}

// frameTag records where in the activation stack a commit happened.
type frameTag struct {
	frameID int
	vertex  int
}

// varCommit is one committed value of a variable.
type varCommit struct {
	done  int
	value int64
	tags  []frameTag
}

// state tracks variable histories and the activation stack.
type state struct {
	nextFrame int
	stack     []*frame
	hist      map[string][]varCommit
	closures  map[*seq.Graph][][]bool
}

func newState() *state {
	return &state{hist: map[string][]varCommit{}, closures: map[*seq.Graph][][]bool{}}
}

// push enters a new activation of g and returns the frame.
func (st *state) push(g *seq.Graph) *frame {
	f := &frame{id: st.nextFrame, graph: g, pred: st.closure(g)}
	st.nextFrame++
	st.stack = append(st.stack, f)
	return f
}

// pop leaves the innermost activation.
func (st *state) pop() { st.stack = st.stack[:len(st.stack)-1] }

// closure memoizes the predecessor closure of a graph.
func (st *state) closure(g *seq.Graph) [][]bool {
	if c, ok := st.closures[g]; ok {
		return c
	}
	n := len(g.Ops)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	reach := make([][]bool, n)
	var dfs func(root, v int)
	dfs = func(root, v int) {
		for _, w := range adj[v] {
			if !reach[root][w] {
				reach[root][w] = true
				dfs(root, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		reach[v] = make([]bool, n)
		dfs(v, v)
	}
	st.closures[g] = reach
	return reach
}

// tags snapshots the current activation stack.
func (st *state) tags() []frameTag {
	out := make([]frameTag, len(st.stack))
	for i, f := range st.stack {
		out[i] = frameTag{frameID: f.id, vertex: f.cur}
	}
	return out
}

// commit records a write of value to a variable completing at cycle done.
func (st *state) commit(name string, done int, value int64) {
	st.hist[name] = append(st.hist[name], varCommit{done: done, value: value, tags: st.tags()})
}

// read returns the value of a variable as seen by an operation starting at
// cycle t under the current activation stack.
func (st *state) read(name string, t int) int64 {
	hist := st.hist[name]
	for i := len(hist) - 1; i >= 0; i-- {
		if st.visible(hist[i], t) {
			return hist[i].value
		}
	}
	return 0
}

// visible reports whether a commit is visible to a read at cycle t.
func (st *state) visible(c varCommit, t int) bool {
	if c.done < t {
		return true
	}
	if c.done > t {
		return false
	}
	// Same cycle: find the deepest frame shared with the commit.
	for i := len(st.stack) - 1; i >= 0; i-- {
		f := st.stack[i]
		for _, tag := range c.tags {
			if tag.frameID != f.id {
				continue
			}
			if tag.vertex == f.cur {
				// The commit came from inside the vertex this frame is
				// currently executing but through a different (already
				// finished) sub-activation — a completed earlier
				// iteration or branch. Sequentially earlier, so visible.
				return true
			}
			return f.pred[tag.vertex][f.cur]
		}
	}
	// No shared frame: the producing activation completed before this
	// one began.
	return true
}
