package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteVCD dumps the simulation's port activity as a Value Change Dump
// file viewable in standard waveform viewers (GTKWave etc.). Input ports
// are reconstructed from the stimulus, output ports from write events.
// One VCD time unit is one clock cycle.
func (s *Simulator) WriteVCD(w io.Writer, from, to int) error {
	bw := bufio.NewWriter(w)
	proc := s.res.Process

	type sig struct {
		name  string
		code  string
		width int
		value func(cycle int) (int64, bool) // value, driven
	}
	var sigs []sig
	code := func(i int) string { return string(rune('!' + i)) }

	var names []string
	for _, p := range proc.Ports {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	for i, name := range names {
		pd := proc.Port(name)
		if pd.Dir.String() == "in" {
			n := name
			sigs = append(sigs, sig{
				name: n, code: code(i), width: pd.Width,
				value: func(c int) (int64, bool) { return s.stim.Sample(n, c), true },
			})
			continue
		}
		writes := map[int]int64{}
		for _, e := range s.Events() {
			if e.Kind == EvWrite && e.Port == name {
				writes[e.Cycle] = e.Value
			}
		}
		// Build a step function from the writes.
		var cur int64
		driven := false
		vals := make([]int64, to+1)
		have := make([]bool, to+1)
		for c := 0; c <= to; c++ {
			if v, ok := writes[c]; ok {
				cur = v
				driven = true
			}
			vals[c], have[c] = cur, driven
		}
		sigs = append(sigs, sig{
			name: name, code: code(i), width: pd.Width,
			value: func(c int) (int64, bool) {
				if c < 0 || c > to {
					return 0, false
				}
				return vals[c], have[c]
			},
		})
	}

	fmt.Fprintf(bw, "$timescale 1ns $end\n$scope module %s $end\n", proc.Name)
	for _, sg := range sigs {
		fmt.Fprintf(bw, "$var wire %d %s %s $end\n", sg.width, sg.code, sg.name)
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	last := map[string]string{}
	emit := func(sg sig, cycle int) string {
		v, driven := sg.value(cycle)
		if !driven {
			if sg.width == 1 {
				return "x" + sg.code
			}
			return fmt.Sprintf("bx %s", sg.code)
		}
		if sg.width == 1 {
			return fmt.Sprintf("%d%s", v&1, sg.code)
		}
		return fmt.Sprintf("b%b %s", v, sg.code)
	}
	for c := from; c <= to; c++ {
		var changes []string
		for _, sg := range sigs {
			line := emit(sg, c)
			if last[sg.code] != line {
				last[sg.code] = line
				changes = append(changes, line)
			}
		}
		if len(changes) > 0 || c == from {
			fmt.Fprintf(bw, "#%d\n", c)
			for _, line := range changes {
				fmt.Fprintln(bw, line)
			}
		}
	}
	fmt.Fprintf(bw, "#%d\n", to+1)
	return bw.Flush()
}
