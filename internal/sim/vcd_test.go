package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
)

func TestWriteVCD(t *testing.T) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	s := New(res, gcdStim(5, 24, 36), ctrlgen.Counter, relsched.IrredundantAnchors)
	end, err := s.Run(10000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteVCD(&buf, 0, end+1); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module gcd", "$enddefinitions",
		"$var wire 8", "$var wire 1", // vector and scalar ports
		"b1100 ", // result = 12 in binary
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The restart fall at cycle 5 must appear as a timestamped change.
	if !strings.Contains(out, "#5") {
		t.Error("VCD missing the cycle-5 timestamp")
	}
	// Undriven outputs start as x.
	if !strings.Contains(out, "bx ") && !strings.Contains(out, "x%") {
		if !strings.Contains(out, "bx") {
			t.Error("VCD should mark undriven vectors as x")
		}
	}
}
