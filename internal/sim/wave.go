package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteWaveform renders a Fig. 14-style ASCII waveform of the simulation:
// one row per signal (sampled input ports and driven output ports), one
// column per cycle. Input rows come from the stimulus; output rows show
// the last driven value, with '.' before the first write. Event markers
// (r = read sampled here, w = write driven here) annotate a second line
// per port.
func (s *Simulator) WriteWaveform(w io.Writer, from, to int) error {
	bw := bufio.NewWriter(w)
	proc := s.res.Process

	var inPorts, outPorts []string
	for _, p := range proc.Ports {
		if p.Dir.String() == "in" {
			inPorts = append(inPorts, p.Name)
		} else {
			outPorts = append(outPorts, p.Name)
		}
	}
	sort.Strings(inPorts)
	sort.Strings(outPorts)

	width := 0
	for _, p := range proc.Ports {
		if len(p.Name) > width {
			width = len(p.Name)
		}
	}

	fmt.Fprintf(bw, "%*s |", width, "cycle")
	for c := from; c <= to; c++ {
		fmt.Fprintf(bw, "%4d", c)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "%s-+%s\n", strings.Repeat("-", width), strings.Repeat("----", to-from+1))

	for _, p := range inPorts {
		fmt.Fprintf(bw, "%*s |", width, p)
		for c := from; c <= to; c++ {
			fmt.Fprintf(bw, "%4d", s.stim.Sample(p, c))
		}
		fmt.Fprintln(bw)
		s.markerRow(bw, width, p, EvRead, from, to)
	}
	for _, p := range outPorts {
		// Reconstruct the driven value over time from write events.
		writes := map[int]int64{}
		for _, e := range s.Events() {
			if e.Kind == EvWrite && e.Port == p {
				writes[e.Cycle] = e.Value
			}
		}
		fmt.Fprintf(bw, "%*s |", width, p)
		var cur int64
		driven := false
		for c := from; c <= to; c++ {
			if v, ok := writes[c]; ok {
				cur = v
				driven = true
			}
			if driven {
				fmt.Fprintf(bw, "%4d", cur)
			} else {
				fmt.Fprintf(bw, "%4s", ".")
			}
		}
		fmt.Fprintln(bw)
		s.markerRow(bw, width, p, EvWrite, from, to)
	}
	return bw.Flush()
}

// markerRow prints r/w markers for a port's events.
func (s *Simulator) markerRow(bw *bufio.Writer, width int, port string, kind EventKind, from, to int) {
	marks := map[int]bool{}
	for _, e := range s.Events() {
		if e.Kind == kind && e.Port == port {
			marks[e.Cycle] = true
		}
	}
	if len(marks) == 0 {
		return
	}
	sym := "r"
	if kind == EvWrite {
		sym = "w"
	}
	fmt.Fprintf(bw, "%*s |", width, "")
	for c := from; c <= to; c++ {
		if marks[c] {
			fmt.Fprintf(bw, "%4s", sym)
		} else {
			fmt.Fprintf(bw, "%4s", "")
		}
	}
	fmt.Fprintln(bw)
}
