package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ctrlgen"
	"repro/internal/designs"
	"repro/internal/relsched"
)

func TestWriteWaveform(t *testing.T) {
	res, err := designs.GCD().Synthesize()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	s := New(res, gcdStim(5, 24, 36), ctrlgen.Counter, relsched.IrredundantAnchors)
	if _, err := s.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteWaveform(&buf, 0, 12); err != nil {
		t.Fatalf("WriteWaveform: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cycle", "restart", "xin", "yin", "result"} {
		if !strings.Contains(out, want) {
			t.Errorf("waveform missing %q:\n%s", want, out)
		}
	}
	// The result row must show '.' before the write and 12 after it.
	lines := strings.Split(out, "\n")
	var resultLine string
	for _, l := range lines {
		if strings.Contains(l, "result |") {
			resultLine = l
		}
	}
	if resultLine == "" {
		t.Fatalf("no result row:\n%s", out)
	}
	if !strings.Contains(resultLine, ".") || !strings.Contains(resultLine, "12") {
		t.Errorf("result row malformed: %q", resultLine)
	}
	// Read markers: one r in the yin block at cycle 5 and one in xin at 6.
	if strings.Count(out, " r") < 2 {
		t.Errorf("expected read markers:\n%s", out)
	}
}
