package synth

import "repro/internal/relsched"

// AnchorStats aggregates the anchor-set and offset statistics the paper
// reports in Tables III and IV, over every graph of a design's hierarchy
// ("the values in the table are based on results for the entire graph").
type AnchorStats struct {
	// Anchors is |A|: all source vertices plus all unbounded-delay
	// operations across the hierarchy. Vertices is |V|.
	Anchors  int
	Vertices int
	// TotalFull and TotalIrredundant are Σ_v |A(v)| and Σ_v |IR(v)|
	// (Table III); the averages divide by Vertices.
	TotalFull        int
	TotalIrredundant int
	// MaxFull/SumMaxFull are max_a σ_a^max and Σ_a σ_a^max over the full
	// anchor sets; the Irredundant pair uses the minimum anchor sets
	// (Table IV).
	MaxFull           int
	SumMaxFull        int
	MaxIrredundant    int
	SumMaxIrredundant int
}

// AvgFull returns TotalFull / Vertices.
func (s AnchorStats) AvgFull() float64 {
	if s.Vertices == 0 {
		return 0
	}
	return float64(s.TotalFull) / float64(s.Vertices)
}

// AvgIrredundant returns TotalIrredundant / Vertices.
func (s AnchorStats) AvgIrredundant() float64 {
	if s.Vertices == 0 {
		return 0
	}
	return float64(s.TotalIrredundant) / float64(s.Vertices)
}

// Stats aggregates anchor statistics over the whole hierarchy.
func (r *Result) Stats() AnchorStats {
	var st AnchorStats
	for _, g := range r.Order {
		gr := r.Graphs[g]
		sched := gr.Schedule
		st.Anchors += len(sched.Info.List)
		st.Vertices += gr.CG.N()
		f, _, ir := sched.Info.TotalSizes()
		st.TotalFull += f
		st.TotalIrredundant += ir
		for _, a := range sched.Info.List {
			if m, ok := sched.MaxOffset(a, relsched.FullAnchors); ok {
				st.SumMaxFull += m
				if m > st.MaxFull {
					st.MaxFull = m
				}
			}
			if m, ok := sched.MaxOffset(a, relsched.IrredundantAnchors); ok {
				st.SumMaxIrredundant += m
				if m > st.MaxIrredundant {
					st.MaxIrredundant = m
				}
			}
		}
	}
	return st
}
