// Package synth drives the Hebe-style structural synthesis flow the paper
// integrates with (§VII): a parsed HardwareC process is lowered to a
// hierarchical sequencing graph, operations are bound to modules,
// resource conflicts are serialized under the timing constraints, and
// each graph of the hierarchy is relative-scheduled bottom-up. The result
// carries, per graph, the constraint graph, the minimum relative schedule,
// and the derived latency (bounded or unbounded) that feeds the parent
// graph's vertex delay.
package synth

import (
	"fmt"

	"repro/internal/bind"
	"repro/internal/cg"
	"repro/internal/hcl"
	"repro/internal/relsched"
	"repro/internal/seq"
)

// Options configures synthesis.
type Options struct {
	// Library is the module library; nil selects bind.Default().
	Library *bind.Library
	// Limits caps module instances per class (0/absent = unlimited).
	Limits map[string]int
	// ResolveMode selects heuristic or exact conflict resolution.
	ResolveMode bind.ResolveMode
	// Decompose lowers compound expressions into three-address ALU
	// operations — the fine granularity Hercules schedules at.
	Decompose bool
	// Fold applies constant folding and algebraic simplification to the
	// behavior before graph construction (the Hercules "behavioral
	// optimization" step of §VII).
	Fold bool
}

// GraphResult is the synthesis outcome for one sequencing graph of the
// hierarchy.
type GraphResult struct {
	Seq     *seq.Graph
	Binding *bind.Binding
	// Serial lists the serializing dependencies added by conflict
	// resolution (op-ID pairs).
	Serial [][2]int
	// CG is the constraint graph the schedule was computed on.
	CG *cg.Graph
	// VID maps op IDs to constraint-graph vertices.
	VID []cg.VertexID
	// Schedule is the minimum relative schedule of CG.
	Schedule *relsched.Schedule
	// Latency is the graph's execution delay as seen by its parent:
	// bounded (the zero-profile sink start time) when the graph has no
	// anchors besides its source, unbounded otherwise.
	Latency cg.Delay
}

// Result is the synthesis outcome for a whole process.
type Result struct {
	Process *hcl.Process
	Top     *seq.Graph
	// Graphs maps every graph in the hierarchy to its result, and Order
	// lists them in post-order (children before parents).
	Graphs map[*seq.Graph]*GraphResult
	Order  []*seq.Graph
}

// TopResult returns the root graph's result.
func (r *Result) TopResult() *GraphResult { return r.Graphs[r.Top] }

// Synthesize runs the full flow on a parsed process.
func Synthesize(p *hcl.Process, opts Options) (*Result, error) {
	if opts.Fold {
		p = hcl.FoldProcess(p)
	}
	top, err := seq.FromProcessOpts(p, seq.BuildOptions{Decompose: opts.Decompose})
	if err != nil {
		return nil, err
	}
	return SynthesizeGraph(p, top, opts)
}

// SynthesizeSource parses HardwareC source and synthesizes it.
func SynthesizeSource(src string, opts Options) (*Result, error) {
	p, err := hcl.Parse(src)
	if err != nil {
		return nil, err
	}
	return Synthesize(p, opts)
}

// SynthesizeGraph runs binding, conflict resolution, and hierarchical
// bottom-up relative scheduling on an already-built sequencing graph.
func SynthesizeGraph(p *hcl.Process, top *seq.Graph, opts Options) (*Result, error) {
	if opts.Library == nil {
		opts.Library = bind.Default()
	}
	r := &Result{Process: p, Top: top, Graphs: map[*seq.Graph]*GraphResult{}}
	// Post-order: children first, so parent delayOf can consult child
	// latencies.
	var post func(g *seq.Graph) error
	post = func(g *seq.Graph) error {
		for _, c := range g.Children() {
			if err := post(c); err != nil {
				return err
			}
		}
		gr, err := synthOne(g, opts, r)
		if err != nil {
			return err
		}
		r.Graphs[g] = gr
		r.Order = append(r.Order, g)
		return nil
	}
	if err := post(top); err != nil {
		return nil, err
	}
	return r, nil
}

// delayFn builds the DelayFn for one graph against already-synthesized
// children.
func delayFn(b *bind.Binding, r *Result) seq.DelayFn {
	return func(o *seq.Op) cg.Delay {
		switch o.Kind {
		case seq.OpNop:
			return cg.Cycles(0)
		case seq.OpLoop:
			// Data-dependent iteration: unbounded (§I).
			return cg.UnboundedDelay()
		case seq.OpCall:
			// A procedure call takes its body's latency.
			return r.Graphs[o.Body].Latency
		case seq.OpCond:
			thenLat := cg.Cycles(0)
			if o.Then != nil {
				thenLat = r.Graphs[o.Then].Latency
			}
			elseLat := cg.Cycles(0)
			if o.Else != nil {
				elseLat = r.Graphs[o.Else].Latency
			}
			if thenLat.Bounded() && elseLat.Bounded() && thenLat.Value() == elseLat.Value() {
				return thenLat
			}
			// Unequal or unbounded branches: the conditional's delay is
			// data-dependent, hence unbounded.
			return cg.UnboundedDelay()
		default:
			return cg.Cycles(b.Delay(o))
		}
	}
}

func synthOne(g *seq.Graph, opts Options, r *Result) (*GraphResult, error) {
	binding, err := bind.Bind(g, opts.Library, opts.Limits)
	if err != nil {
		return nil, err
	}
	delayOf := delayFn(binding, r)
	serial, err := binding.ResolveConflicts(delayOf, opts.ResolveMode)
	if err != nil {
		return nil, fmt.Errorf("synth: graph %s: %w", g.Name, err)
	}
	cgr, vid, err := g.ToConstraintGraph(delayOf, serial)
	if err != nil {
		return nil, err
	}
	sched, err := relsched.Compute(cgr)
	if err != nil {
		return nil, fmt.Errorf("synth: graph %s: %w", g.Name, err)
	}
	gr := &GraphResult{
		Seq: g, Binding: binding, Serial: serial,
		CG: cgr, VID: vid, Schedule: sched,
	}
	if len(cgr.Anchors()) == 1 { // only the source vertex
		t, err := sched.StartTimes(relsched.ZeroProfile(cgr), relsched.IrredundantAnchors)
		if err != nil {
			return nil, err
		}
		gr.Latency = cg.Cycles(t[cgr.Sink()])
	} else {
		gr.Latency = cg.UnboundedDelay()
	}
	return gr, nil
}
