package synth

import (
	"testing"

	"repro/internal/bind"
	"repro/internal/relsched"
	"repro/internal/seq"
)

const gcdSource = `
process gcd (xin, yin, restart, result)
    in port xin[8], yin[8], restart;
    out port result[8];
    boolean x[8], y[8];
    tag a, b;
    while (restart)
        ;
    {
        constraint mintime from a to b = 1 cycles;
        constraint maxtime from a to b = 1 cycles;
        a: y = read(yin);
        b: x = read(xin);
    }
    if ((x != 0) & (y != 0))
    {
        repeat {
            while (x >= y)
                x = x - y;
            < y = x; x = y; >
        } until (y == 0);
    }
    write result = x;
`

func TestSynthesizeGCD(t *testing.T) {
	r, err := SynthesizeSource(gcdSource, Options{})
	if err != nil {
		t.Fatalf("SynthesizeSource: %v", err)
	}
	if r.TopResult() == nil {
		t.Fatal("no top result")
	}
	// Hierarchy: 5 graphs, children scheduled before parents.
	if len(r.Order) != 5 {
		t.Fatalf("graphs = %d, want 5", len(r.Order))
	}
	seen := map[*seq.Graph]bool{}
	for _, g := range r.Order {
		for _, c := range g.Children() {
			if !seen[c] {
				t.Errorf("child %s scheduled after parent %s", c.Name, g.Name)
			}
		}
		seen[g] = true
	}
	// The top graph has unbounded latency (it waits on restart).
	if r.TopResult().Latency.Bounded() {
		t.Error("gcd top latency should be unbounded")
	}
	// The inner while body (one subtraction) is bounded with latency 1.
	for _, g := range r.Order {
		gr := r.Graphs[g]
		if len(gr.CG.Anchors()) == 1 && !gr.Latency.Bounded() {
			t.Errorf("graph %s: anchor-free graph must have bounded latency", g.Name)
		}
	}
	// Every schedule verifies.
	for _, g := range r.Order {
		if err := relsched.Verify(r.Graphs[g].Schedule); err != nil {
			t.Errorf("graph %s: %v", g.Name, err)
		}
	}
}

func TestGCDReadOffsets(t *testing.T) {
	// The mintime/maxtime = 1 pair pins the xin read exactly one cycle
	// after the yin read in the relative schedule.
	r, err := SynthesizeSource(gcdSource, Options{})
	if err != nil {
		t.Fatalf("SynthesizeSource: %v", err)
	}
	top := r.TopResult()
	var yv, xv = -1, -1
	for _, o := range top.Seq.Ops {
		if o.Tag == "a" {
			yv = int(top.VID[o.ID])
		}
		if o.Tag == "b" {
			xv = int(top.VID[o.ID])
		}
	}
	if yv < 0 || xv < 0 {
		t.Fatal("tagged reads not found")
	}
	s := top.Schedule
	for _, a := range s.Info.List {
		oy, oky := s.Offset(a, top.CG.Vertices()[yv].ID, relsched.FullAnchors)
		ox, okx := s.Offset(a, top.CG.Vertices()[xv].ID, relsched.FullAnchors)
		if oky && okx && ox != oy+1 {
			t.Errorf("anchor %s: σ(read x)=%d, want σ(read y)+1=%d", top.CG.Name(a), ox, oy+1)
		}
	}
}

func TestStatsMonotone(t *testing.T) {
	r, err := SynthesizeSource(gcdSource, Options{})
	if err != nil {
		t.Fatalf("SynthesizeSource: %v", err)
	}
	st := r.Stats()
	if st.Vertices <= 0 || st.Anchors <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.TotalIrredundant > st.TotalFull {
		t.Errorf("ΣIR %d > ΣA %d", st.TotalIrredundant, st.TotalFull)
	}
	if st.MaxIrredundant > st.MaxFull || st.SumMaxIrredundant > st.SumMaxFull {
		t.Errorf("offset stats grew under irredundant sets: %+v", st)
	}
	if st.AvgFull() < st.AvgIrredundant() {
		t.Errorf("average anchor set grew after redundancy removal")
	}
}

func TestResourceLimitsSerialize(t *testing.T) {
	src := `
process p (a0, a1, a2, a3, o)
    in port a0[8], a1[8], a2[8], a3[8];
    out port o[8];
    boolean w[8], x[8], y[8], z[8];
    w = a0 + 1;
    x = a1 + 1;
    y = a2 + 1;
    z = a3 + 1;
    write o = (w | x) & (y | z);
`
	free, err := SynthesizeSource(src, Options{})
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	shared, err := SynthesizeSource(src, Options{
		Limits:      map[string]int{"add": 1},
		ResolveMode: bind.Exact,
	})
	if err != nil {
		t.Fatalf("limited: %v", err)
	}
	lf := free.TopResult().Latency
	ls := shared.TopResult().Latency
	if !lf.Bounded() || !ls.Bounded() {
		t.Fatal("latencies should be bounded")
	}
	if ls.Value() <= lf.Value() {
		t.Errorf("sharing one adder should lengthen the schedule: %d vs %d", ls.Value(), lf.Value())
	}
	if len(shared.TopResult().Serial) == 0 {
		t.Error("sharing must introduce serializations")
	}
}

func TestSynthesizeSourceParseError(t *testing.T) {
	if _, err := SynthesizeSource("process oops (", Options{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestFoldShrinksGraphs(t *testing.T) {
	src := `
process p (i, o)
    in port i[8];
    out port o[8];
    boolean v[8];
    v = read(i);
    v = v + (3 - 3) + 2 * 2;
    write o = v * 1;
`
	plain, err := SynthesizeSource(src, Options{Decompose: true})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	folded, err := SynthesizeSource(src, Options{Decompose: true, Fold: true})
	if err != nil {
		t.Fatalf("folded: %v", err)
	}
	if folded.Top.CountOps() >= plain.Top.CountOps() {
		t.Errorf("folding did not shrink the graph: %d vs %d",
			folded.Top.CountOps(), plain.Top.CountOps())
	}
}
