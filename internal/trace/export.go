package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
)

// ChromeTraceEvent is one entry of the Chrome Trace Event format (the
// JSON consumed by Perfetto and chrome://tracing): a complete event
// (Ph == "X") for a span or an instant event (Ph == "i") for a span
// event. Timestamps and durations are microseconds; fractional values
// preserve sub-microsecond spans.
type ChromeTraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  uint64  `json:"tid"`
	// Scope is "t" (thread) for instant events, per the format spec.
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level Chrome Trace Event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// chromeCategory tags every exported event.
const chromeCategory = "relsched"

// ToChromeTrace converts a span snapshot into the Chrome Trace Event
// object. Each root span (one scheduling job) becomes its own track
// (tid = root span ID), so a pooled batch renders as one row per job and
// the rows overlap exactly where the workers ran concurrently; child
// spans nest within their root's row by time containment.
func ToChromeTrace(spans []SpanData) *ChromeTrace {
	ct := &ChromeTrace{
		TraceEvents:     make([]ChromeTraceEvent, 0, len(spans)),
		DisplayTimeUnit: "ns",
	}
	for _, sp := range spans {
		ev := ChromeTraceEvent{
			Name: sp.Name,
			Cat:  chromeCategory,
			Ph:   "X",
			TS:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  uint64(sp.Root),
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				if a.IsStr {
					ev.Args[a.Key] = a.Str
				} else {
					ev.Args[a.Key] = a.Int
				}
			}
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
		for _, e := range sp.Events {
			ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
				Name:  e.Name,
				Cat:   chromeCategory,
				Ph:    "i",
				TS:    float64(e.At.Nanoseconds()) / 1e3,
				PID:   1,
				TID:   uint64(sp.Root),
				Scope: "t",
				Args:  map[string]any{"value": e.Value},
			})
		}
	}
	return ct
}

// WriteChromeTrace serializes a span snapshot as Chrome Trace Event JSON
// — load the output in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ToChromeTrace(spans))
}

// WriteJSONL serializes a span snapshot as JSONL: one SpanData object
// per line, in completion order — the streaming-friendly form for log
// pipelines.
func WriteJSONL(w io.Writer, spans []SpanData) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves the tracer's live ring buffer. The default (and
// ?format=chrome) response is Chrome Trace Event JSON; ?format=jsonl
// streams one span per line. A nil tracer serves an empty trace, so the
// endpoint can be registered unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Snapshot()
		switch r.URL.Query().Get("format") {
		case "jsonl":
			w.Header().Set("Content-Type", "application/jsonl")
			_ = WriteJSONL(w, spans)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, spans)
		}
	})
}
