package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildTrace records two jobs with stage children and events.
func buildTrace() *Tracer {
	tr := New(Options{})
	for _, id := range []string{"gcd", "frisc"} {
		root := tr.StartSpan("job")
		root.SetStr("id", id)
		st := root.StartChild("schedule")
		st.Event("relaxation.sweep", 1)
		st.SetInt("iterations", 1)
		st.End()
		root.SetBool("cache_hit", false)
		root.End()
	}
	return tr
}

// checkChromeSchema validates the structural invariants of the Chrome
// Trace Event format on raw JSON bytes, the same check the CI smoke job
// applies to `relsched batch -trace` output.
func checkChromeSchema(t *testing.T, data []byte) *ChromeTrace {
	t.Helper()
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for i, ev := range ct.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if ev.Cat != chromeCategory {
			t.Errorf("event %d: cat = %q, want %q", i, ev.Cat, chromeCategory)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				t.Errorf("event %d: negative dur %v", i, ev.Dur)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("event %d: instant scope = %q, want \"t\"", i, ev.Scope)
			}
		default:
			t.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("event %d: negative ts %v", i, ev.TS)
		}
		if ev.PID != 1 || ev.TID == 0 {
			t.Errorf("event %d: pid/tid = %d/%d", i, ev.PID, ev.TID)
		}
	}
	return &ct
}

func TestWriteChromeTrace(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ct := checkChromeSchema(t, buf.Bytes())
	// 2 jobs × (root X + stage X + 1 instant) = 6 events.
	if len(ct.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(ct.TraceEvents))
	}
	// Each job is its own track: two distinct tids, shared by a job's
	// root, stage, and instant events.
	tids := map[uint64]int{}
	for _, ev := range ct.TraceEvents {
		tids[ev.TID]++
	}
	if len(tids) != 2 {
		t.Errorf("got %d tracks, want one per job (2): %v", len(tids), tids)
	}
	for tid, n := range tids {
		if n != 3 {
			t.Errorf("track %d has %d events, want 3", tid, n)
		}
	}
	// Attrs surface as args; instants carry their value.
	var sawID, sawValue bool
	for _, ev := range ct.TraceEvents {
		if ev.Args["id"] == "gcd" {
			sawID = true
		}
		if ev.Ph == "i" {
			if v, ok := ev.Args["value"].(float64); !ok || v != 1 {
				t.Errorf("instant args = %v, want value 1", ev.Args)
			}
			sawValue = true
		}
	}
	if !sawID || !sawValue {
		t.Errorf("args missing: sawID=%v sawValue=%v", sawID, sawValue)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []SpanData
	for sc.Scan() {
		var sp SpanData
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d is not a span object: %v", len(lines)+1, err)
		}
		lines = append(lines, sp)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL spans, want 4", len(lines))
	}
	// Round trip: decoded spans match the snapshot.
	for i, want := range tr.Snapshot() {
		got := lines[i]
		if got.ID != want.ID || got.Name != want.Name || got.Root != want.Root {
			t.Errorf("span %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestHandler(t *testing.T) {
	tr := buildTrace()
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/")
	if ctype != "application/json" {
		t.Errorf("content type = %q", ctype)
	}
	checkChromeSchema(t, []byte(body))

	body, ctype = get("/?format=jsonl")
	if ctype != "application/jsonl" {
		t.Errorf("jsonl content type = %q", ctype)
	}
	if n := strings.Count(strings.TrimSpace(body), "\n") + 1; n != 4 {
		t.Errorf("jsonl has %d lines, want 4", n)
	}

	// A nil tracer serves an empty, still-valid trace.
	var nilTracer *Tracer
	nilSrv := httptest.NewServer(nilTracer.Handler())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ct ChromeTrace
	if err := json.NewDecoder(resp.Body).Decode(&ct); err != nil {
		t.Fatalf("nil tracer endpoint: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Errorf("nil tracer served %d events", len(ct.TraceEvents))
	}
}
