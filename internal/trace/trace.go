// Package trace is a dependency-free, low-overhead span tracer for the
// scheduling pipeline: bounded ring-buffer storage, atomic span IDs,
// optional head sampling, and nil-safety throughout (a nil *Tracer or
// *Span is valid and every operation on it is a no-op, mirroring
// relsched.Hooks). Where internal/obs answers "how long do jobs take in
// aggregate", a trace answers "why did *this* job take 40ms": each
// scheduling job becomes a root span with child spans per pipeline stage
// (fingerprint, cache, wellpose, analyze, schedule) and instant events
// for the inner-loop iterations the paper bounds (relaxation sweeps per
// Theorem 8, serialization passes per Theorem 7).
//
// Completed spans land in a fixed-capacity ring buffer; when it fills,
// the oldest spans are overwritten and counted in Dropped. Two exporters
// render a snapshot: Chrome Trace Event JSON (loadable in Perfetto or
// chrome://tracing, see WriteChromeTrace) and JSONL (one span object per
// line, see WriteJSONL). Handler serves the live ring buffer over HTTP.
//
// Concurrency: a Tracer is safe for concurrent use by any number of
// goroutines. An individual Span is not: it must be started, annotated,
// and ended by one goroutine (the scheduling pipeline runs each job on a
// single worker, so this is the natural shape).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. IDs are allocated from an
// atomic counter and never reused; 0 is "no span" (the parent of roots).
type SpanID uint64

// DefaultCapacity is the ring-buffer size used when Options.Capacity is
// unset: enough for ~500 jobs at the pipeline's ~8 spans per job.
const DefaultCapacity = 4096

// Options configures a Tracer. The zero value is usable: DefaultCapacity
// spans, no sampling.
type Options struct {
	// Capacity bounds the number of completed spans retained; older spans
	// are overwritten (and counted as dropped) once it fills. Values <= 0
	// select DefaultCapacity.
	Capacity int
	// SampleEvery keeps one root span (and its children) out of every N
	// started; values <= 1 keep everything. Sampling is decided at root
	// creation, so a sampled-out job pays only one atomic increment.
	SampleEvery int
}

// Tracer records spans into a bounded ring buffer. A nil *Tracer is a
// valid disabled tracer: StartSpan returns a nil *Span and every
// downstream call is a no-op without allocating.
type Tracer struct {
	capacity    int
	sampleEvery int
	base        time.Time // all span timestamps are offsets from this

	nextID  atomic.Uint64
	roots   atomic.Uint64 // root spans requested, for the sampling decision
	dropped atomic.Uint64

	mu    sync.Mutex
	ring  []SpanData
	next  int    // ring write cursor
	count uint64 // completed spans ever recorded
}

// New creates a Tracer.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}
	return &Tracer{
		capacity:    opts.Capacity,
		sampleEvery: opts.SampleEvery,
		base:        time.Now(),
	}
}

// Attr is one key/value annotation on a span. Exactly one of Str or Int
// is meaningful, selected by IsStr.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsStr bool   `json:"is_str,omitempty"`
}

// Event is an instant event inside a span (a point in time, not a
// duration): one inner-loop iteration, one readjustment pass.
type Event struct {
	Name string `json:"name"`
	// At is the offset from the tracer's base time.
	At time.Duration `json:"at_ns"`
	// Value carries the event's count (offsets raised, edges added).
	Value int64 `json:"value"`
}

// SpanData is the immutable record of a completed span.
type SpanData struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Root is the ID of the span's root ancestor (its own ID for roots);
	// exporters group spans into per-job tracks by it.
	Root SpanID `json:"root"`
	Name string `json:"name"`
	// Start is the offset from the tracer's base time; Dur the span length.
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Events []Event       `json:"events,omitempty"`
}

// Span is an in-progress span. A nil *Span is valid: every method is a
// no-op, so instrumented code never branches on whether tracing is on.
type Span struct {
	tracer *Tracer
	data   SpanData
}

// StartSpan opens a root span. It returns nil — the disabled span — when
// the tracer is nil or the sampling policy drops this root.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	if t.sampleEvery > 1 && (t.roots.Add(1)-1)%uint64(t.sampleEvery) != 0 {
		return nil
	}
	id := SpanID(t.nextID.Add(1))
	return &Span{tracer: t, data: SpanData{
		ID:    id,
		Root:  id,
		Name:  name,
		Start: time.Since(t.base),
	}}
}

// StartChild opens a child span. On a nil receiver it returns nil, so a
// sampled-out or disabled root disables its whole subtree.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	return &Span{tracer: t, data: SpanData{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: s.data.ID,
		Root:   s.data.Root,
		Name:   name,
		Start:  time.Since(t.base),
	}}
}

// ID returns the span's ID, or 0 for a nil (disabled) span. The flight
// recorder uses it to carve one job's subtree out of a snapshot.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// Root returns the ID of the span's root ancestor (its own ID for
// roots), or 0 for a nil span. When a job span is opened as a child of
// a request span, FilterRoot over this ID carves out the whole request
// tree rather than just the job subtree.
func (s *Span) Root() SpanID {
	if s == nil {
		return 0
	}
	return s.data.Root
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Int: value})
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Str: value, IsStr: true})
}

// SetBool annotates the span with a boolean attribute (stored as 0/1).
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	v := int64(0)
	if value {
		v = 1
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Int: v})
}

// Event records an instant event inside the span with a count value.
func (s *Span) Event(name string, value int64) {
	if s == nil {
		return
	}
	s.data.Events = append(s.data.Events, Event{
		Name:  name,
		At:    time.Since(s.tracer.base),
		Value: value,
	})
}

// End completes the span and commits it to the tracer's ring buffer.
// Ending a span twice records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.Dur = time.Since(s.tracer.base) - s.data.Start
	s.tracer.commit(s.data)
}

// commit appends a completed span, overwriting the oldest when full.
func (t *Tracer) commit(d SpanData) {
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
		t.dropped.Add(1)
	}
	t.next++
	if t.next == t.capacity {
		t.next = 0
	}
	t.count++
	t.mu.Unlock()
}

// Snapshot returns the retained spans in completion order (oldest
// first). A nil tracer snapshots empty.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
		return out
	}
	// Full ring: the oldest span is at the write cursor.
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// FilterRoot returns the spans belonging to one root's tree (the root
// itself included), preserving order. Snapshot + FilterRoot is how the
// flight recorder assembles the span section of a diagnostic bundle.
func FilterRoot(spans []SpanData, root SpanID) []SpanData {
	if root == 0 {
		return nil
	}
	var out []SpanData
	for _, d := range spans {
		if d.Root == root {
			out = append(out, d)
		}
	}
	return out
}

// Reset discards all retained spans (the drop counter survives).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.mu.Unlock()
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns the number of completed spans overwritten by ring
// wrap-around since the tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
