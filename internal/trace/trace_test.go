package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestSpanHierarchy(t *testing.T) {
	tr := New(Options{})
	root := tr.StartSpan("job")
	root.SetStr("id", "gcd")
	child := root.StartChild("analyze")
	child.SetInt("anchors", 3)
	child.Event("relaxation.sweep", 1)
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (child, root in completion order)", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "analyze" || r.Name != "job" {
		t.Fatalf("completion order wrong: %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID || c.Root != r.ID || r.Root != r.ID || r.Parent != 0 {
		t.Errorf("lineage wrong: child parent=%d root=%d, root id=%d parent=%d",
			c.Parent, c.Root, r.ID, r.Parent)
	}
	if c.ID == r.ID {
		t.Error("span IDs must be distinct")
	}
	if len(c.Events) != 1 || c.Events[0].Name != "relaxation.sweep" || c.Events[0].Value != 1 {
		t.Errorf("child events = %+v", c.Events)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "anchors" || c.Attrs[0].Int != 3 {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
	if len(r.Attrs) != 1 || !r.Attrs[0].IsStr || r.Attrs[0].Str != "gcd" {
		t.Errorf("root attrs = %+v", r.Attrs)
	}
	if c.Start < r.Start || c.Dur < 0 || r.Dur < c.Dur {
		t.Errorf("timing inconsistent: root [%v +%v], child [%v +%v]", r.Start, r.Dur, c.Start, c.Dur)
	}
}

func TestRingBufferBounds(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(fmt.Sprintf("s%d", i))
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	spans := tr.Snapshot()
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first after wrap)", i, sp.Name, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || len(tr.Snapshot()) != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		sp := tr.StartSpan("job")
		if sp != nil {
			kept++
			// A sampled root's children are live; a dropped root's are nil.
			if c := sp.StartChild("stage"); c == nil {
				t.Error("child of sampled-in root is nil")
			} else {
				c.End()
			}
			sp.End()
		}
	}
	if kept != 3 {
		t.Errorf("kept %d of 9 roots with SampleEvery=3, want 3", kept)
	}
	if got := tr.Len(); got != 6 {
		t.Errorf("Len = %d, want 6 (3 roots + 3 children)", got)
	}
}

// TestNilSafety drives the whole API through nil receivers: the disabled
// path of the engine integration.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("job")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	child := sp.StartChild("stage")
	if child != nil {
		t.Fatal("nil span returned a live child")
	}
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetBool("k", true)
	sp.Event("e", 1)
	sp.End()
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer is not empty")
	}
	tr.Reset() // must not panic
}

// TestNilTracerZeroAllocs pins the acceptance criterion that disabled
// tracing adds zero allocations to the scheduling hot path: every
// operation the engine performs per job must be free when the tracer is
// nil.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartSpan("job")
		root.SetStr("id", "x")
		root.SetBool("cache_hit", false)
		stage := root.StartChild("schedule")
		stage.Event("relaxation.sweep", 1)
		stage.SetInt("iterations", 3)
		stage.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer hot path allocates %.1f per run, want 0", allocs)
	}
}

// TestConcurrentCommit exercises the ring buffer from many goroutines;
// run with -race to verify the locking.
func TestConcurrentCommit(t *testing.T) {
	tr := New(Options{Capacity: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan("job")
				c := sp.StartChild("stage")
				c.End()
				sp.End()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 64 {
		t.Errorf("Len = %d, want full ring 64", got)
	}
	if total := uint64(tr.Len()) + tr.Dropped(); total != 1600 {
		t.Errorf("retained+dropped = %d, want 1600 spans", total)
	}
	ids := map[SpanID]bool{}
	for _, sp := range tr.Snapshot() {
		if ids[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		ids[sp.ID] = true
	}
}

// BenchmarkSpanLifecycle measures the enabled-tracer cost of the span
// work the engine does per traced job: a root, one stage child, an
// attribute, an event, and both commits.
func BenchmarkSpanLifecycle(b *testing.B) {
	tr := New(Options{Capacity: 1 << 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.StartSpan("job")
		stage := root.StartChild("schedule")
		stage.Event("relax.sweep", 1)
		stage.SetInt("iterations", 2)
		stage.End()
		root.End()
	}
}

// BenchmarkNilTracer measures the same call pattern through a nil
// tracer — the cost every untraced job pays, which must stay at zero
// allocations and a few nanoseconds of nil checks.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.StartSpan("job")
		stage := root.StartChild("schedule")
		stage.Event("relax.sweep", 1)
		stage.SetInt("iterations", 2)
		stage.End()
		root.End()
	}
}
