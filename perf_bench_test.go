package repro

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cg"
	"repro/internal/designs"
	"repro/internal/randgraph"
	"repro/internal/relsched"
)

// Per-stage microbenchmarks of the cold scheduling path, one
// sub-benchmark per paper design (all of a design's constraint graphs per
// iteration). Compare against the retained seed pipeline with:
//
//	go test -run '^$' -bench 'ScheduleCold' -count 10 . | benchstat -
//
// (see docs/PERFORMANCE.md for the full walkthrough). The *Baseline
// variants run relsched.ReferenceCompute* — the pre-optimization
// implementation kept as reference.go — so the CSR/arena win stays
// measurable in-tree instead of requiring a checkout of the old commit.

// designGraphs returns the constraint graphs of every paper design,
// keyed by design name in designs.All() order.
func designGraphs(tb testing.TB) []struct {
	name   string
	graphs []*cg.Graph
} {
	tb.Helper()
	var out []struct {
		name   string
		graphs []*cg.Graph
	}
	for _, d := range designs.All() {
		r, err := d.Synthesize()
		if err != nil {
			tb.Fatalf("%s: %v", d.Name, err)
		}
		var gs []*cg.Graph
		for _, gname := range r.Order {
			gs = append(gs, r.Graphs[gname].CG)
		}
		out = append(out, struct {
			name   string
			graphs []*cg.Graph
		}{d.Name, gs})
	}
	return out
}

// BenchmarkAnalyze measures the anchor-analysis stage (anchor sets,
// relevant/irredundant sets, per-anchor longest paths and forward
// reachability) per design.
func BenchmarkAnalyze(b *testing.B) {
	for _, d := range designGraphs(b) {
		b.Run(d.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, g := range d.graphs {
					if _, err := relsched.Analyze(g); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkScheduleCold measures the iterative scheduling stage alone —
// analysis precomputed, cache disabled by construction — per design. This
// is the loop the flat pooled arena and CSR edge iteration target.
func BenchmarkScheduleCold(b *testing.B) {
	for _, d := range designGraphs(b) {
		infos := analyzeAll(b, d.graphs)
		b.Run(d.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, info := range infos {
					if _, err := relsched.ComputeFromAnalysis(info); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkScheduleColdBaseline is BenchmarkScheduleCold against the
// retained seed scheduler ([][]int tables, closure sweeps, per-schedule
// reachability floods).
func BenchmarkScheduleColdBaseline(b *testing.B) {
	for _, d := range designGraphs(b) {
		infos := analyzeAll(b, d.graphs)
		b.Run(d.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, info := range infos {
					if _, err := relsched.ReferenceComputeFromAnalysis(info); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPipeline times the full cold pipeline — well-posedness check,
// anchor analysis, iterative scheduling — end to end over every paper
// design, optimized vs the retained seed implementation. This is the
// benchmark-shaped counterpart of the cold_speedup ratio recorded in
// BENCH_engine.json.
func BenchmarkPipeline(b *testing.B) {
	ds := designGraphs(b)
	run := func(b *testing.B, compute func(*cg.Graph) (*relsched.Schedule, error)) {
		for i := 0; i < b.N; i++ {
			for _, d := range ds {
				for _, g := range d.graphs {
					if _, err := compute(g); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("optimized", func(b *testing.B) { run(b, relsched.Compute) })
	b.Run("reference", func(b *testing.B) { run(b, relsched.ReferenceCompute) })
}

func analyzeAll(tb testing.TB, graphs []*cg.Graph) []*relsched.AnchorInfo {
	tb.Helper()
	infos := make([]*relsched.AnchorInfo, len(graphs))
	for i, g := range graphs {
		info, err := relsched.Analyze(g)
		if err != nil {
			tb.Fatal(err)
		}
		infos[i] = info
	}
	return infos
}

// largeGraph generates a constraint graph big enough to clear the
// anchor-parallel fan-out threshold (anchors × (vertices+edges) work).
func largeGraph(tb testing.TB) *cg.Graph {
	tb.Helper()
	cfg := randgraph.Config{
		N: 3000, AnchorProb: 0.04, MaxDelay: 6, MaxFanIn: 3,
		MinConstraints: 40, MaxConstraints: 40, MaxSlack: 5,
	}
	return randgraph.Generate(cfg, rand.New(rand.NewSource(7)))
}

// BenchmarkAnalyzeParallel measures the anchor-sharded analysis on a
// large random graph, sequential vs all-CPU parallelism.
func BenchmarkAnalyzeParallel(b *testing.B) {
	g := largeGraph(b)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(parLabel(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relsched.AnalyzeOpts(g, relsched.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleColdParallel measures the anchor-sharded relaxation
// sweeps on a large random graph, sequential vs all-CPU parallelism.
func BenchmarkScheduleColdParallel(b *testing.B) {
	g := largeGraph(b)
	info, err := relsched.Analyze(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(parLabel(par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := relsched.ComputeFromAnalysisOpts(info, nil, relsched.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func parLabel(par int) string {
	if par == 1 {
		return "seq"
	}
	return "par"
}

// BenchmarkDeltaEdit measures one incremental edit — adding and removing
// a maximum constraint near the sink of a 100 000-vertex chain — through
// Schedule.Apply. The edit's cone is the chain tail, so the cone-bounded
// delta path re-schedules in microseconds where a cold recompute
// (BenchmarkFullRecompute, same graph) takes milliseconds; the ratio is
// the delta_speedup recorded in BENCH_engine.json.
func BenchmarkDeltaEdit(b *testing.B) {
	g := randgraph.Chain(100_000, 20_000)
	s, err := relsched.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	u, v := cg.VertexID(n-3), cg.VertexID(n-2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s, err = s.Apply(cg.AddMaxEdit(u, v, 2)); err != nil {
			b.Fatal(err)
		}
		if s, err = s.Apply(cg.RemoveEdgeEdit(s.G.M() - 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRecompute is the cold counterpart of BenchmarkDeltaEdit:
// a from-scratch Compute of the same 100 000-vertex chain, the cost every
// edit paid before the delta path existed.
func BenchmarkFullRecompute(b *testing.B) {
	g := randgraph.Chain(100_000, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relsched.Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}
